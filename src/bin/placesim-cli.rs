//! `placesim-cli`: command-line trace tooling for the reproduction.
//!
//! ```text
//! placesim-cli suite
//! placesim-cli gen <app> <out.trace> [--scale S] [--seed N] [--format v1|v2|v3]
//! placesim-cli info <trace>
//! placesim-cli analyze <trace> [--metrics out.json]
//! placesim-cli place <trace> <algorithm> <processors> [--metrics out.json]
//! placesim-cli simulate <trace> <algorithm> <processors> [--cache-kb K]
//!              [--assoc W] [--latency L] [--switch C]
//!              [--protocol wi|mesi|dragon]
//!              [--metrics out.json] [--timeline out.json]
//!              [--attribution out.json]
//! placesim-cli attribute <report.json> [--top N] [--pairs N]
//! placesim-cli probe <trace>
//! placesim-cli report <manifest-or-dir...> [--baseline F] [--threshold PCT]
//! ```
//!
//! Traces use the `placesim-trace` binary format, so generated traces
//! can be archived and re-analyzed like MPtrace outputs were.

use placesim::journal::JournalError;
use placesim::manifest::{ManifestEntry, RunManifest};
use placesim::report::{Report, ReportHole};
use placesim::supervisor::SupervisorConfig;
use placesim::{Error, PreparedApp};
use placesim_analysis::{CharacteristicsRow, SharingAnalysis, SpillBudget};
use placesim_machine::{
    attribution_enabled, probe_coherence, simulate_attributed, simulate_attributed_parallel,
    simulate_observed, simulate_traced, ArchConfig, AttrCollector, AttributionConfig, Protocol,
};
use placesim_obs::{sink, SpanTimer};
use placesim_placement::{thread_lengths, PlacementAlgorithm, PlacementInputs};
use placesim_trace::{compress, io as trace_io, stream, ProgramTrace};
use placesim_workloads::{generate, generate_streamed, suite, GenOptions};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// A CLI failure carrying its process exit code. The taxonomy (documented
/// in the README):
///
/// * 1 — a runtime failure (I/O, simulation) after arguments parsed fine
/// * 2 — a usage error; the usage text is printed
/// * 3 — a sweep finished but with holes (partial results were written)
/// * 4 — a corrupt journal, or a resume against a different sweep's journal
/// * 5 — the service directory is locked by another live daemon
#[derive(Debug)]
enum CliError {
    /// Bad arguments or an unusable command line (exit 2).
    Usage(String),
    /// The command ran and failed (exit 1).
    Runtime(String),
    /// A supervised sweep completed with annotated holes (exit 3).
    PartialSweep(String),
    /// The checkpoint journal is corrupt or mismatched (exit 4).
    CorruptJournal(String),
    /// `serve` found a live daemon already holding the directory (exit 5).
    ServiceLocked(String),
}

impl CliError {
    fn code(&self) -> u8 {
        match self {
            CliError::Runtime(_) => 1,
            CliError::Usage(_) => 2,
            CliError::PartialSweep(_) => 3,
            CliError::CorruptJournal(_) => 4,
            CliError::ServiceLocked(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Runtime(m)
            | CliError::PartialSweep(m)
            | CliError::CorruptJournal(m)
            | CliError::ServiceLocked(m) => m,
        }
    }
}

// Legacy command paths still produce bare `String` errors; they keep
// their historical exit code 2 (and the usage print) via this mapping.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            if matches!(e, CliError::Usage(_)) {
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.code())
        }
    }
}

const USAGE: &str = "\
usage:
  placesim-cli suite
  placesim-cli gen <app> <out.trace> [--scale S] [--seed N]
               [--format v1|v2|v3] [--flat]
  placesim-cli info <trace>
  placesim-cli analyze <trace> [--metrics out.json]
  placesim-cli place <trace> <algorithm> <processors> [--metrics out.json]
  placesim-cli simulate <trace> <algorithm> <processors>
               [--protocol wi|mesi|dragon] [--cache-kb K] [--assoc W]
               [--latency L] [--switch C] [--sim-threads N]
               [--metrics out.json] [--timeline out.json]
               [--attribution out.json]
  placesim-cli attribute <report.json> [--top N] [--pairs N]
  placesim-cli probe <trace> [--metrics out.json]
  placesim-cli report <manifest-or-dir...> [--protocol wi|mesi|dragon]
               [--baseline file-or-dir] [--threshold PCT] [--json out.json]
  placesim-cli sweep <app> --journal <file> [--resume]
               [--protocol wi|mesi|dragon] [--scale S] [--seed N]
               [--algos A,B,...] [--procs 2,4,...]
               [--max-attempts N] [--timeout-ms T] [--sim-threads N]
               [--report out.json] [--attribution out.json]
               [--telemetry live.json]
  placesim-cli serve --dir <dir> [--socket path] [--workers N]
               [--queue N] [--timeout-ms T] [--max-attempts N] [--cache N]
  placesim-cli client <status|shutdown|submit|result|wait> --socket <path>
               [submit: --op analyze|place|simulate|sweep --app A
                [--scale S] [--seed N] [--protocol wi|mesi|dragon]
                [--algos A,B,...] [--procs 2,4,...]]
               [result/wait: --id N [--timeout-ms T] [--raw]]
exit codes: 0 ok; 1 runtime failure; 2 usage error;
            3 sweep finished with holes; 4 corrupt/mismatched journal;
            5 service directory locked by a live daemon";

/// Ring capacity for `simulate --timeline`: 1M events ≈ 48 MB, enough
/// to retain every event of a scale-0.002 run and the tail of larger
/// ones (the export reports how many were dropped).
const TIMELINE_CAPACITY: usize = 1 << 20;

/// Hot-address rows carried in an attribution report file. The
/// `attribute` renderer trims further (`--top`); the file keeps enough
/// to make re-rendering at different depths cheap.
const ATTRIBUTION_TOP: usize = 1024;

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("suite") => Ok(cmd_suite()?),
        Some("gen") => Ok(cmd_gen(&args[1..])?),
        Some("info") => Ok(cmd_info(&args[1..])?),
        Some("analyze") => Ok(cmd_analyze(&args[1..])?),
        Some("place") => Ok(cmd_place(&args[1..])?),
        Some("simulate") => Ok(cmd_simulate(&args[1..])?),
        Some("attribute") => cmd_attribute(&args[1..]),
        Some("probe") => Ok(cmd_probe(&args[1..])?),
        Some("report") => Ok(cmd_report(&args[1..])?),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some(other) => Err(CliError::Usage(format!("unknown command {other}"))),
        None => Err(CliError::Usage("missing command".into())),
    }
}

/// Returns the raw value of a `--key value` flag, if present.
fn raw_flag<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args
                .get(i + 1)
                .map(|v| Some(v.as_str()))
                .ok_or_else(|| format!("{name} needs a value"));
        }
    }
    Ok(None)
}

/// Parses a floating-point `--key value` flag (only `--scale` is
/// genuinely fractional; every other numeric flag is an integer).
fn flag(args: &[String], name: &str) -> Result<Option<f64>, String> {
    raw_flag(args, name)?
        .map(|v| {
            v.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite())
                .ok_or_else(|| format!("{name} value must be a finite number, got {v}"))
        })
        .transpose()
}

/// Parses an unsigned-integer `--key value` flag. Unlike the historical
/// parse-as-f64-then-cast path, this rejects negative, fractional and
/// out-of-range values instead of silently saturating them.
fn uint_flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    raw_flag(args, name)?
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("{name} value must be a non-negative integer, got {v}"))
        })
        .transpose()
}

/// Parses `--sim-threads`, the intra-simulation worker-thread count.
/// 1 (the default) is the serial engine; 0 is rejected as a usage error
/// rather than silently meaning "serial".
fn sim_threads_flag(args: &[String]) -> Result<usize, String> {
    match uint_flag(args, "--sim-threads")? {
        Some(0) => Err("--sim-threads must be at least 1".into()),
        Some(n) => usize::try_from(n).map_err(|_| format!("--sim-threads value {n} exceeds usize")),
        None => Ok(1),
    }
}

/// Parses the `--protocol` flag into a coherence protocol. Junk values
/// are usage errors (exit 2) carrying the valid names, like the other
/// strict flag parsers.
fn protocol_flag(args: &[String]) -> Result<Option<Protocol>, String> {
    raw_flag(args, "--protocol")?
        .map(|v| v.parse::<Protocol>().map_err(|e| e.to_string()))
        .transpose()
}

fn parse_algorithm(name: &str) -> Result<PlacementAlgorithm, String> {
    PlacementAlgorithm::ALL
        .into_iter()
        .find(|a| a.paper_name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<&str> = PlacementAlgorithm::ALL
                .iter()
                .map(|a| a.paper_name())
                .collect();
            format!(
                "unknown algorithm {name}; choose one of {}",
                names.join(", ")
            )
        })
}

fn load_trace(path: &str) -> Result<ProgramTrace, String> {
    let mut file =
        BufReader::new(File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?);
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut file, &mut raw)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    // Accepts the flat v1, compressed v2 and streaming v3 formats.
    compress::read_any(&raw).map_err(|e| format!("cannot decode {path}: {e}"))
}

/// Reads the trace file's version field without loading the body, so
/// commands can route v3 files through the streaming readers. Returns
/// `None` when the file is not a placesim trace (the full decoder then
/// produces the proper error).
fn trace_version(path: &str) -> Result<Option<u32>, String> {
    let mut file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut head = [0u8; 8];
    match std::io::Read::read_exact(&mut file, &mut head) {
        Ok(()) if head[..4] == compress::MAGIC => Ok(Some(u32::from_le_bytes(
            head[4..].try_into().expect("4 bytes"),
        ))),
        Ok(()) => Ok(None),
        Err(_) => Ok(None),
    }
}

/// Opens a v3 trace for streaming access.
fn open_streamed(path: &str) -> Result<stream::FileReader, String> {
    stream::FileReader::open(path).map_err(|e| format!("cannot open {path} for streaming: {e}"))
}

fn cmd_suite() -> Result<(), String> {
    println!(
        "{:<14} {:<8} {:>8} {:>16} {:>14}",
        "app", "grain", "threads", "mean length", "shared refs %"
    );
    for s in suite() {
        println!(
            "{:<14} {:<8} {:>8} {:>16} {:>13.1}%",
            s.name,
            format!("{:?}", s.granularity),
            s.threads,
            s.thread_length.mean as u64,
            s.shared_percent
        );
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let app = args.first().ok_or("gen needs an app name")?;
    let out = args.get(1).ok_or("gen needs an output path")?;
    let spec = placesim_workloads::spec(app).ok_or_else(|| format!("unknown app {app}"))?;
    let opts = GenOptions {
        // --scale wins; otherwise PLACESIM_SCALE, like the bench harness.
        scale: flag(args, "--scale")?.unwrap_or_else(|| placesim::scale_from_env(0.1)),
        seed: uint_flag(args, "--seed")?.unwrap_or(1994),
    };
    let flat = args.iter().any(|a| a == "--flat");
    let format = match raw_flag(args, "--format")? {
        Some("v1") => 1u32,
        Some("v2") => 2,
        Some("v3") => 3,
        Some(other) => return Err(format!("--format must be v1, v2 or v3, got {other}")),
        // --flat predates --format and stays as a v1 alias.
        None if flat => 1,
        None => 2,
    };
    if flat && format != 1 {
        return Err("--flat means v1 and contradicts the given --format".into());
    }

    // Stream into a temporary sibling and rename into place only once
    // the write succeeded, so a full disk or crash never leaves a
    // truncated `.trace` masquerading as a valid one.
    let out_path = Path::new(out);
    let tmp = sink::tmp_sibling(out_path);
    let written = File::create(&tmp)
        .map_err(|e| format!("cannot create {}: {e}", tmp.display()))
        .and_then(|file| {
            // v3 streams thread-at-a-time and never materializes the
            // program; v1/v2 build it in memory as before.
            let result = if format == 3 {
                generate_streamed(&spec, &opts, BufWriter::new(file))
                    .map(|summary: stream::StreamSummary| (spec.threads, summary.total_refs))
            } else {
                let prog = generate(&spec, &opts);
                let counts = (prog.thread_count(), prog.total_refs());
                if format == 1 {
                    trace_io::write_program(&prog, BufWriter::new(file))
                } else {
                    compress::write_program(&prog, BufWriter::new(file))
                }
                .map(|()| counts)
            };
            result.map_err(|e| format!("cannot write {out}: {e}"))
        })
        .and_then(|counts| {
            std::fs::rename(&tmp, out_path)
                .map(|()| counts)
                .map_err(|e| format!("cannot finalize {out}: {e}"))
        });
    let (threads, total_refs) = match written {
        Ok(counts) => counts,
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            return Err(e);
        }
    };
    println!(
        "wrote {out}: {threads} threads, {total_refs} references (scale {}, seed {}, {} format)",
        opts.scale,
        opts.seed,
        match format {
            1 => "flat v1",
            2 => "compressed v2",
            _ => "streaming v3",
        }
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("info needs a trace path")?;
    if trace_version(path)? == Some(stream::VERSION) {
        // v3 answers everything from the footer index: no decode, no
        // memory proportional to the trace.
        let reader = open_streamed(path)?;
        let per_thread: Vec<stream::KindTotals> = (0..reader.thread_count())
            .map(|t| reader.totals(placesim_trace::ThreadId::from_index(t)))
            .collect();
        println!("program:      {}", reader.name());
        println!("threads:      {}", reader.thread_count());
        println!("references:   {}", reader.total_refs());
        println!(
            "instructions: {}",
            per_thread.iter().map(|k| k.instr).sum::<u64>()
        );
        println!(
            "data refs:    {}",
            per_thread.iter().map(|k| k.reads + k.writes).sum::<u64>()
        );
        println!(
            "chunks:       {} ({} checksummed payload bytes)",
            reader.total_chunks(),
            reader.total_payload_bytes()
        );
        println!(
            "footer:       {} index bytes at offset {}",
            reader.footer_bytes(),
            reader.footer_start()
        );
        for (t, k) in per_thread.iter().enumerate() {
            let tid = placesim_trace::ThreadId::from_index(t);
            println!(
                "  T{t}: {} instrs, {} reads, {} writes, {} chunks ({} bytes)",
                k.instr,
                k.reads,
                k.writes,
                reader.chunk_count(tid),
                reader.payload_bytes(tid)
            );
        }
        return Ok(());
    }
    let prog = load_trace(path)?;
    println!("program:      {}", prog.name());
    println!("threads:      {}", prog.thread_count());
    println!("references:   {}", prog.total_refs());
    println!("instructions: {}", prog.total_instrs());
    println!("data refs:    {}", prog.total_data_refs());
    for (id, t) in prog.iter() {
        println!(
            "  {id}: {} instrs, {} reads, {} writes",
            t.instr_len(),
            t.read_len(),
            t.write_len()
        );
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("analyze needs a trace path")?;
    let timer = SpanTimer::start("analyze");
    // v3 traces are profiled out-of-core: the sharded scan reads chunk
    // iterators and spills past the PLACESIM_SPILL_ADDRS budget, so the
    // trace never has to fit in memory. Results are bit-identical to
    // the in-memory path.
    let (sharing, row) = if trace_version(path)? == Some(stream::VERSION) {
        let reader = open_streamed(path)?;
        let sharing = SharingAnalysis::measure_streamed(&reader, &SpillBudget::from_env())
            .map_err(|e| format!("cannot analyze {path}: {e}"))?;
        let row = CharacteristicsRow::from_sharing_parts(
            reader.name(),
            reader.instr_lengths(),
            &sharing,
            1994,
        );
        (sharing, row)
    } else {
        let prog = load_trace(path)?;
        let sharing = SharingAnalysis::measure(&prog);
        let row = CharacteristicsRow::from_sharing(&prog, &sharing, 1994);
        (sharing, row)
    };

    if let Some(metrics) = raw_flag(args, "--metrics")? {
        // Analysis runs no simulation: the manifest records the tool,
        // app and wall time with an empty results array, so sweeps can
        // account the front-end cost alongside the simulated entries.
        let mut manifest = RunManifest::new("analyze", &row.app, &ArchConfig::paper_default());
        manifest.wall_secs = timer.elapsed_secs();
        manifest.write(Path::new(metrics))?;
        println!("metrics: {metrics}");
    }

    println!("app: {}", row.app);
    println!(
        "pairwise sharing:      mean {:.0}  dev {:.1}%",
        row.pairwise_sharing.mean,
        row.pairwise_sharing.dev_percent()
    );
    println!(
        "n-way sharing:         mean {:.0}  dev {:.1}%",
        row.nway_sharing.mean,
        row.nway_sharing.dev_percent()
    );
    println!(
        "refs per shared addr:  mean {:.1}  dev {:.1}%",
        row.refs_per_shared_addr.mean,
        row.refs_per_shared_addr.dev_percent()
    );
    println!(
        "shared refs:           {:.1}%",
        row.shared_refs_percent.mean
    );
    println!(
        "thread length:         mean {:.0}  dev {:.1}%",
        row.thread_length.mean,
        row.thread_length.dev_percent()
    );
    println!(
        "shared addresses:      {} of {}",
        sharing.shared_address_count(),
        sharing.total_address_count()
    );
    Ok(())
}

fn cmd_place(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("place needs a trace path")?;
    let algo = parse_algorithm(args.get(1).ok_or("place needs an algorithm")?)?;
    let processors: usize = args
        .get(2)
        .ok_or("place needs a processor count")?
        .parse()
        .map_err(|_| "processor count must be an integer".to_string())?;
    let timer = SpanTimer::start("place");
    // Placement needs only the sharing matrices and per-thread lengths;
    // for v3 both come from the streaming scan and the footer, so the
    // trace is never materialized.
    let (name, total_refs, sharing, lengths) = if trace_version(path)? == Some(stream::VERSION) {
        let reader = open_streamed(path)?;
        let sharing = SharingAnalysis::measure_streamed(&reader, &SpillBudget::from_env())
            .map_err(|e| format!("cannot analyze {path}: {e}"))?;
        let lengths = reader.instr_lengths();
        (
            reader.name().to_owned(),
            reader.total_refs(),
            sharing,
            lengths,
        )
    } else {
        let prog = load_trace(path)?;
        let sharing = SharingAnalysis::measure(&prog);
        let lengths = thread_lengths(&prog);
        (prog.name().to_owned(), prog.total_refs(), sharing, lengths)
    };
    let inputs = PlacementInputs::new(&sharing, &lengths);
    let map = algo.place(&inputs, processors).map_err(|e| e.to_string())?;

    if let Some(metrics) = raw_flag(args, "--metrics")? {
        // Placement runs no simulation either: the entry records which
        // algorithm placed how many references onto how many
        // processors; the cycle fields stay zero.
        let mut manifest = RunManifest::new("place", &name, &ArchConfig::paper_default());
        manifest.wall_secs = timer.elapsed_secs();
        manifest.entries = vec![ManifestEntry {
            algorithm: algo.paper_name().to_owned(),
            processors,
            execution_time: 0,
            total_refs,
            total_misses: 0,
            miss_rate: 0.0,
            coherence_traffic: 0,
            update_traffic: 0,
            misses: placesim_machine::MissBreakdown::default(),
        }];
        manifest.write(Path::new(metrics))?;
        println!("metrics: {metrics}");
    }

    println!("{} onto {processors} processors:", algo.paper_name());
    print!("{map}");
    println!("loads: {:?}", map.loads(&lengths));
    println!("load imbalance: {:.3}", map.load_imbalance(&lengths));
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    // Validate pure arguments before touching the filesystem.
    let sim_threads = sim_threads_flag(args)?;
    let protocol = protocol_flag(args)?;
    let prog = load_trace(args.first().ok_or("simulate needs a trace path")?)?;
    let algo = parse_algorithm(args.get(1).ok_or("simulate needs an algorithm")?)?;
    let processors: usize = args
        .get(2)
        .ok_or("simulate needs a processor count")?
        .parse()
        .map_err(|_| "processor count must be an integer".to_string())?;

    let mut builder = ArchConfig::builder();
    if let Some(kb) = uint_flag(args, "--cache-kb")? {
        builder.cache_size(
            kb.checked_mul(1024)
                .ok_or("--cache-kb value overflows bytes")?,
        );
    }
    if let Some(w) = uint_flag(args, "--assoc")? {
        builder
            .associativity(u32::try_from(w).map_err(|_| format!("--assoc value {w} exceeds u32"))?);
    }
    if let Some(l) = uint_flag(args, "--latency")? {
        builder.memory_latency(l);
    }
    if let Some(c) = uint_flag(args, "--switch")? {
        builder.context_switch(c);
    }
    if let Some(p) = protocol {
        builder.protocol(p);
    }
    let config = builder.build().map_err(|e| e.to_string())?;

    let timer = SpanTimer::start("simulate");
    let sharing = SharingAnalysis::measure(&prog);
    let lengths = thread_lengths(&prog);
    let inputs = PlacementInputs::new(&sharing, &lengths);
    let map = algo.place(&inputs, processors).map_err(|e| e.to_string())?;

    let timeline_path = raw_flag(args, "--timeline")?;
    let attribution_path = raw_flag(args, "--attribution")?;
    let mut attr: Option<AttrCollector> = None;
    let (stats, obs, trace) = if timeline_path.is_some() {
        if sim_threads > 1 {
            println!(
                "note: --timeline needs the serial engine's cycle ordering; --sim-threads ignored"
            );
        }
        let (stats, obs, trace) =
            simulate_traced(&prog, &map, &config, TIMELINE_CAPACITY).map_err(|e| e.to_string())?;
        (stats, Some(obs), Some(trace))
    } else if attribution_path.is_some() {
        // Attribution rides the engine hooks: serial and parallel agree
        // bit-for-bit (DESIGN.md §13), so --sim-threads composes.
        let acfg = AttributionConfig::default();
        let (stats, collector) = if sim_threads > 1 {
            simulate_attributed_parallel(&prog, &map, &config, acfg, sim_threads)
        } else {
            simulate_attributed(&prog, &map, &config, acfg)
        }
        .map_err(|e| e.to_string())?;
        attr = Some(collector);
        (stats, None, None)
    } else if sim_threads > 1 {
        // The parallel engine is bit-identical to the serial one (see
        // DESIGN.md §10); only the engine-internal obs report is
        // unavailable, so `--metrics` output simply omits it.
        let stats = placesim_machine::simulate_parallel(&prog, &map, &config, sim_threads)
            .map_err(|e| e.to_string())?;
        (stats, None, None)
    } else {
        let (stats, obs) = simulate_observed(&prog, &map, &config).map_err(|e| e.to_string())?;
        (stats, Some(obs), None)
    };

    if let (Some(path), Some(trace)) = (timeline_path, &trace) {
        sink::write_atomic(Path::new(path), trace.to_chrome_json().as_bytes())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "timeline:       {path} ({} events retained, {} dropped)",
            trace.len(),
            trace.dropped()
        );
        if trace.total_recorded() == 0 {
            println!("  no events recorded: rebuild with `--features obs` to enable tracing");
        } else {
            let runs = trace.sharing_runs();
            let longest = runs.iter().map(placesim_machine::SharingRun::cycles).max();
            println!(
                "  sequential-sharing runs: {}{}",
                runs.len(),
                longest.map_or_else(String::new, |c| format!(" (longest {c} cycles)"))
            );
        }
    }

    if attribution_path.is_some() && attr.is_none() {
        // --timeline claimed the traced engine, so attribution takes
        // its own serial pass (the engines produce identical stats, so
        // the report describes the same run).
        let (_, collector) =
            simulate_attributed(&prog, &map, &config, AttributionConfig::default())
                .map_err(|e| e.to_string())?;
        attr = Some(collector);
    }
    if let (Some(path), Some(attr)) = (attribution_path, &attr) {
        let protocol_name = config.protocol().to_string();
        let body = if attribution_enabled() {
            attr.report_json(&protocol_name, prog.thread_count(), ATTRIBUTION_TOP)
        } else {
            AttrCollector::disabled_report_json(&protocol_name, prog.thread_count())
        };
        placesim_obs::attribution::validate(&body)
            .map_err(|e| format!("internal: attribution report invalid: {e}"))?;
        sink::write_atomic(Path::new(path), body.as_bytes())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if attribution_enabled() {
            println!(
                "attribution:    {path} ({} events over {} addresses, {} mode)",
                attr.total_events(),
                attr.tracked_addresses(),
                if attr.is_sketch() { "sketch" } else { "exact" }
            );
        } else {
            println!("attribution:    {path} (disabled: rebuild with `--features obs`)");
        }
    }

    if let Some(metrics) = raw_flag(args, "--metrics")? {
        let mut manifest = RunManifest::new("simulate", prog.name(), &config);
        manifest.wall_secs = timer.elapsed_secs();
        manifest.entries = vec![ManifestEntry::from_stats(
            algo.paper_name(),
            processors,
            &stats,
        )];
        manifest.obs = obs;
        manifest.write(Path::new(metrics))?;
        println!("metrics:        {metrics}");
    }

    let m = stats.total_misses();
    println!("execution time: {} cycles", stats.execution_time());
    println!("references:     {}", stats.total_refs());
    println!("miss rate:      {:.3}%", 100.0 * stats.miss_rate());
    println!("misses:");
    println!("  compulsory            {}", m.compulsory);
    println!("  intra-thread conflict {}", m.intra_thread_conflict);
    println!("  inter-thread conflict {}", m.inter_thread_conflict);
    println!("  invalidation          {}", m.invalidation);
    println!("coherence traffic: {}", stats.coherence_traffic());
    println!("update traffic:    {}", stats.total_updates());
    Ok(())
}

/// Renders a `placesim-attribution-v1` report as paper-style tables:
/// the hottest shared lines (with their sharing-run shape) and the
/// hottest writer/victim thread pairs.
fn cmd_attribute(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("attribute needs a report path".into()))?;
    let top_n = uint_flag(args, "--top")?.unwrap_or(10) as usize;
    let pairs_n = uint_flag(args, "--pairs")?.unwrap_or(10) as usize;
    let body = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
    // The strict parser rejects malformed documents before anything is
    // rendered, so a truncated or tampered report is a clean exit 1.
    let doc = placesim_obs::attribution::parse(&body)
        .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;

    if !doc.enabled {
        println!(
            "attribution was disabled in the producing build; rebuild with \
             `--features obs` and re-run `simulate --attribution`"
        );
        return Ok(());
    }
    println!(
        "coherence attribution: protocol {}, {} threads, {} mode ({} addresses tracked)",
        doc.protocol, doc.threads, doc.mode, doc.tracked_addresses
    );
    if doc.mode == "sketch" {
        println!(
            "  sketch counts may undercount by up to {} events per address",
            doc.error_bound
        );
    }
    println!(
        "totals: {} invalidations, {} updates, {} coherence misses ({} unattributed)",
        doc.invalidations, doc.updates, doc.coherence_misses, doc.unattributed
    );
    println!("hot shared lines:");
    println!(
        "  {:<14} {:>9} {:>9} {:>9} {:>9} {:>7} {:>9} {:>8}",
        "line", "events", "inval", "update", "miss", "runs", "mean-run", "max-run"
    );
    for a in doc.top.iter().take(top_n) {
        println!(
            "  {:<#14x} {:>9} {:>9} {:>9} {:>9} {:>7} {:>9.1} {:>8}",
            a.line,
            a.events,
            a.invalidations,
            a.updates,
            a.coherence_misses,
            a.run_count,
            a.run_mean,
            a.run_max
        );
    }
    if doc.top.is_empty() {
        println!("  (no attributed events)");
    }
    println!("hottest thread pairs:");
    for (a, b, c) in doc.pairs.iter().take(pairs_n) {
        println!("  T{a} <-> T{b}: {c}");
    }
    if doc.pairs.is_empty() {
        println!("  (none)");
    }
    Ok(())
}

fn cmd_probe(args: &[String]) -> Result<(), String> {
    let prog = load_trace(args.first().ok_or("probe needs a trace path")?)?;
    let config = ArchConfig::paper_default();
    let timer = SpanTimer::start("probe");
    let result = probe_coherence(&prog, &config).map_err(|e| e.to_string())?;

    if let Some(metrics) = raw_flag(args, "--metrics")? {
        let mut manifest = RunManifest::new("probe", prog.name(), &config);
        manifest.wall_secs = timer.elapsed_secs();
        // The probe places one thread per processor by construction.
        manifest.entries = vec![ManifestEntry::from_stats(
            "ONE-PER-PROC",
            prog.thread_count(),
            &result.stats,
        )];
        manifest.write(Path::new(metrics))?;
        println!("metrics: {metrics}");
    }

    println!("one-thread-per-processor coherence probe:");
    println!("  compulsory misses: {}", result.compulsory_misses());
    println!("  coherence traffic: {}", result.total_traffic());
    println!(
        "  traffic fraction:  {:.4}% of references",
        100.0 * result.traffic_fraction()
    );
    // Top-5 hottest thread pairs.
    let mut pairs: Vec<(usize, usize, u64)> = result.traffic.iter_pairs().collect();
    pairs.sort_by_key(|&(_, _, v)| std::cmp::Reverse(v));
    println!("  hottest thread pairs:");
    for (a, b, v) in pairs.into_iter().take(5) {
        println!("    T{a} <-> T{b}: {v}");
    }
    Ok(())
}

/// Expands each operand into manifest files: a directory contributes
/// its `*.json` entries in sorted order (unreadable or invalid ones are
/// skipped with a warning, so a results directory may hold reports or
/// baselines alongside the manifests), while an explicitly named file
/// must parse.
fn collect_manifests(operands: &[&str]) -> Result<Vec<RunManifest>, String> {
    let mut manifests = Vec::new();
    for op in operands {
        let path = Path::new(op);
        if path.is_dir() {
            let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read directory {op}: {e}"))?
                .filter_map(Result::ok)
                .map(|entry| entry.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                .collect();
            files.sort();
            for file in files {
                match std::fs::read_to_string(&file)
                    .map_err(|e| e.to_string())
                    .and_then(|body| RunManifest::parse(&body))
                {
                    Ok(m) => manifests.push(m),
                    Err(e) => eprintln!("skipping {}: {e}", file.display()),
                }
            }
        } else {
            let body =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {op}: {e}"))?;
            manifests.push(RunManifest::parse(&body).map_err(|e| format!("{op}: {e}"))?);
        }
    }
    Ok(manifests)
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    // Split positional manifest paths from `--flag value` pairs.
    const VALUE_FLAGS: [&str; 4] = ["--baseline", "--threshold", "--json", "--protocol"];
    let mut operands: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if VALUE_FLAGS.contains(&a) {
            i += 2; // flag + value, validated by the flag helpers below
        } else if a.starts_with("--") {
            return Err(format!("unknown report flag {a}"));
        } else {
            operands.push(a);
            i += 1;
        }
    }
    if operands.is_empty() {
        return Err("report needs at least one manifest file or directory".into());
    }

    let protocol = protocol_flag(args)?;
    let mut manifests = collect_manifests(&operands)?;
    if let Some(p) = protocol {
        // Restrict the report (but not the baseline) to one protocol's
        // manifests; the grouping key still carries the protocol, so
        // mixed inputs without the filter stay correct too.
        manifests.retain(|m| m.config.protocol() == p);
        if manifests.is_empty() {
            return Err(format!("no valid manifests for protocol {p}"));
        }
    }
    if manifests.is_empty() {
        return Err("no valid manifests found".into());
    }
    let report = Report::from_manifests(&manifests);
    print!("{}", report.render_text());

    if let Some(out) = raw_flag(args, "--json")? {
        sink::write_atomic(Path::new(out), report.to_json().as_bytes())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("report json: {out}");
    }

    if let Some(base) = raw_flag(args, "--baseline")? {
        let threshold = flag(args, "--threshold")?.unwrap_or(2.0);
        let base_manifests = collect_manifests(&[base])?;
        if base_manifests.is_empty() {
            return Err(format!("baseline {base} holds no valid manifests"));
        }
        let baseline = Report::from_manifests(&base_manifests);
        let regressions = report.compare(&baseline, threshold);
        if regressions.is_empty() {
            println!("baseline check: no regressions beyond {threshold:.1}%");
        } else {
            for r in &regressions {
                eprintln!(
                    "regression: {} {} p={} {}: {} -> {} (+{:.2}%)",
                    r.app, r.algorithm, r.processors, r.metric, r.baseline, r.current, r.delta_pct
                );
            }
            return Err(format!(
                "{} regression(s) beyond {threshold:.1}% vs baseline",
                regressions.len()
            ));
        }
    }
    Ok(())
}

/// Parses a comma-separated `--procs` list into processor counts.
fn parse_procs(list: &str) -> Result<Vec<usize>, String> {
    let procs: Vec<usize> = list
        .split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("--procs entries must be positive integers, got {p:?}"))
        })
        .collect::<Result<_, _>>()?;
    if procs.is_empty() {
        return Err("--procs list is empty".into());
    }
    Ok(procs)
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let app_name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("sweep needs an app name".into()))?;
    let spec = placesim_workloads::spec(app_name)
        .ok_or_else(|| CliError::Usage(format!("unknown app {app_name}")))?;
    let journal = raw_flag(args, "--journal")?
        .ok_or_else(|| CliError::Usage("sweep needs --journal <file>".into()))?
        .to_owned();
    let resume = args.iter().any(|a| a == "--resume");

    let opts = GenOptions {
        scale: flag(args, "--scale")?.unwrap_or_else(|| placesim::scale_from_env(0.1)),
        seed: uint_flag(args, "--seed")?.unwrap_or(1994),
    };
    let algorithms: Vec<PlacementAlgorithm> = match raw_flag(args, "--algos")? {
        Some(list) => list
            .split(',')
            .map(|name| parse_algorithm(name.trim()))
            .collect::<Result<_, _>>()?,
        None => PlacementAlgorithm::STATIC.to_vec(),
    };
    let processors = match raw_flag(args, "--procs")? {
        Some(list) => parse_procs(list)?,
        None => vec![2, 4, 8, 16],
    };

    // The sweep's cells call `simulate`, which reads
    // PLACESIM_SIM_THREADS; the supervisor also reads it to shrink its
    // cell pool so cell-level and simulation-level parallelism stay
    // within the PLACESIM_THREADS budget.
    let sim_threads = sim_threads_flag(args)?;
    if sim_threads > 1 {
        std::env::set_var("PLACESIM_SIM_THREADS", sim_threads.to_string());
    }

    let mut sup = SupervisorConfig::new();
    if let Some(n) = uint_flag(args, "--max-attempts")? {
        sup.max_attempts =
            u32::try_from(n).map_err(|_| format!("--max-attempts value {n} exceeds u32"))?;
    }
    if let Some(ms) = uint_flag(args, "--timeout-ms")? {
        sup.watchdog = Some(Duration::from_millis(ms));
    }
    let attribution_out = raw_flag(args, "--attribution")?.map(str::to_owned);
    if attribution_out.is_some() {
        sup = sup.with_attribution(AttributionConfig::default());
    }
    if let Some(t) = raw_flag(args, "--telemetry")? {
        sup = sup.with_telemetry(std::path::PathBuf::from(t));
    }

    let protocol = protocol_flag(args)?;

    let mut app = PreparedApp::prepare(&spec, &opts);
    if let Some(p) = protocol {
        // The journal header pins the whole ArchConfig, protocol
        // included, so `--resume` under a different protocol is a
        // mismatch (exit 4) rather than a silently mixed sweep.
        app.config = app.config.with_protocol(p);
    }
    if algorithms.contains(&PlacementAlgorithm::CoherenceTraffic) {
        app.run_probe()
            .map_err(|e| CliError::Runtime(format!("coherence probe failed: {e}")))?;
    }
    let app = Arc::new(app);

    let sweep = placesim::run_supervised_sweep(
        &app,
        &algorithms,
        &processors,
        Path::new(&journal),
        resume,
        &sup,
    )
    .map_err(|e| match e {
        // A journal the supervisor cannot trust or even read gets its
        // own exit code so orchestration can tell "fix the journal"
        // from "re-run the sweep".
        Error::Journal(JournalError::Corrupt(_)) | Error::Journal(JournalError::Mismatch(_)) => {
            CliError::CorruptJournal(e.to_string())
        }
        other => CliError::Runtime(other.to_string()),
    })?;

    for d in &sweep.dropped {
        eprintln!("journal recovery dropped {d}");
    }
    if sweep.resumed > 0 {
        println!(
            "resumed: {} of {} cells recovered from {journal}",
            sweep.resumed,
            sweep.header.cell_count()
        );
    }

    let manifest = sweep.manifest();
    let mut report = Report::from_manifests([&manifest]);
    report.holes = sweep
        .holes
        .iter()
        .map(|h| ReportHole {
            app: sweep.header.app.clone(),
            algorithm: h.algorithm.clone(),
            processors: h.processors,
            attempts: u64::from(h.attempts),
            reason: h.reason.clone(),
        })
        .collect();
    print!("{}", report.render_text());
    let f = &sweep.faults;
    if f.total() > 0 {
        println!(
            "faults absorbed: {} panics, {} timeouts ({} threads abandoned), {} errors, \
             {} journal I/O errors, {} retries",
            f.panics, f.timeouts, f.abandoned, f.errors, f.io_errors, f.retries
        );
    }
    if let Some(out) = raw_flag(args, "--report")? {
        sink::write_atomic(Path::new(out), report.to_json().as_bytes())
            .map_err(|e| CliError::Runtime(format!("cannot write {out}: {e}")))?;
        println!("report json: {out}");
    }
    if let Some(out) = &attribution_out {
        // The sweep-level collector merges every committed cell of this
        // run (resumed cells were attributed by the run that committed
        // them). Written even on a partial sweep, like --report.
        let protocol_name = app.config.protocol().to_string();
        let threads = app.prog.thread_count();
        let body = match (&sweep.attribution, attribution_enabled()) {
            (Some(attr), true) => attr.report_json(&protocol_name, threads, ATTRIBUTION_TOP),
            _ => AttrCollector::disabled_report_json(&protocol_name, threads),
        };
        placesim_obs::attribution::validate(&body)
            .map_err(|e| CliError::Runtime(format!("internal: attribution report invalid: {e}")))?;
        sink::write_atomic(Path::new(out), body.as_bytes())
            .map_err(|e| CliError::Runtime(format!("cannot write {out}: {e}")))?;
        println!("attribution json: {out}");
    }
    println!("journal: {journal}");

    if sweep.is_complete() {
        Ok(())
    } else {
        // Outputs above were still written: healthy cells survive; the
        // exit code flags the holes for orchestration.
        Err(CliError::PartialSweep(format!(
            "sweep finished with {} hole(s) out of {} cells",
            sweep.holes.len(),
            sweep.header.cell_count()
        )))
    }
}

/// SIGTERM/SIGINT flag for `serve`: the handler only raises an atomic,
/// the accept loop notices and begins a graceful drain.
#[cfg(unix)]
mod term {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the handler for SIGTERM (15) and SIGINT (2).
    pub fn install() {
        // SAFETY: the handler is async-signal-safe (one atomic store),
        // and `signal` is only given a valid function pointer.
        unsafe {
            signal(15, on_term as *const () as usize);
            signal(2, on_term as *const () as usize);
        }
    }
}

#[cfg(unix)]
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    use placesim::service::{self, PlacementService, ServiceConfig, ServiceError};

    let dir = raw_flag(args, "--dir")?
        .ok_or_else(|| CliError::Usage("serve needs --dir <dir>".into()))?
        .to_owned();
    let dir = std::path::PathBuf::from(dir);
    let mut cfg = ServiceConfig::new();
    if let Some(n) = uint_flag(args, "--workers")? {
        cfg.workers =
            usize::try_from(n).map_err(|_| format!("--workers value {n} exceeds usize"))?;
    }
    if let Some(n) = uint_flag(args, "--queue")? {
        if n == 0 {
            return Err(CliError::Usage("--queue must be at least 1".into()));
        }
        cfg.queue_capacity =
            usize::try_from(n).map_err(|_| format!("--queue value {n} exceeds usize"))?;
    }
    if let Some(ms) = uint_flag(args, "--timeout-ms")? {
        cfg.job_timeout = Some(Duration::from_millis(ms));
    }
    if let Some(n) = uint_flag(args, "--max-attempts")? {
        cfg.max_attempts =
            u32::try_from(n).map_err(|_| format!("--max-attempts value {n} exceeds u32"))?;
    }
    if let Some(n) = uint_flag(args, "--cache")? {
        cfg.cache_capacity =
            usize::try_from(n).map_err(|_| format!("--cache value {n} exceeds usize"))?;
    }
    let socket = raw_flag(args, "--socket")?
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| dir.join("service.sock"));

    term::install();
    let (svc, recovery) = PlacementService::start(&dir, cfg).map_err(|e| match e {
        ServiceError::Locked { .. } => CliError::ServiceLocked(e.to_string()),
        other => CliError::Runtime(other.to_string()),
    })?;
    if !recovery.resumed.is_empty() || recovery.completed > 0 {
        println!(
            "recovered from journal: {} finished, {} failed, {} resumed, {} line(s) dropped",
            recovery.completed,
            recovery.failed,
            recovery.resumed.len(),
            recovery.dropped
        );
    }
    println!("serving on {}", socket.display());
    let served = service::serve_unix(&svc, &socket, &term::STOP);
    // Drain even when the socket loop failed: accepted jobs finish or
    // stay journaled either way.
    svc.drain_and_join();
    served.map_err(|e| CliError::Runtime(e.to_string()))?;
    let f = svc.fault_counters();
    if f.total() > 0 {
        println!(
            "faults absorbed: {} panics, {} timeouts ({} threads abandoned), {} errors, \
             {} journal I/O errors, {} retries",
            f.panics, f.timeouts, f.abandoned, f.errors, f.io_errors, f.retries
        );
    }
    println!("drained");
    Ok(())
}

#[cfg(not(unix))]
fn cmd_serve(_args: &[String]) -> Result<(), CliError> {
    Err(CliError::Runtime(
        "serve needs a Unix socket; this platform has none".into(),
    ))
}

#[cfg(unix)]
fn cmd_client(args: &[String]) -> Result<(), CliError> {
    use placesim_obs::json::{self, JsonValue, JsonWriter};
    use std::io::{BufRead, Write};
    use std::os::unix::net::UnixStream;

    let verb = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| {
            CliError::Usage("client needs a verb: status, shutdown, submit, result, wait".into())
        })?
        .as_str();
    let socket = raw_flag(args, "--socket")?
        .ok_or_else(|| CliError::Usage("client needs --socket <path>".into()))?
        .to_owned();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "placesim-service-v1");
    match verb {
        "status" | "shutdown" => {
            w.field_str("op", verb);
        }
        "result" | "wait" => {
            w.field_str("op", verb);
            let id = uint_flag(args, "--id")?
                .ok_or_else(|| CliError::Usage(format!("{verb} needs --id <job>")))?;
            w.field_u64("id", id);
            if verb == "wait" {
                w.field_u64(
                    "timeout_ms",
                    uint_flag(args, "--timeout-ms")?.unwrap_or(60_000),
                );
            }
        }
        "submit" => {
            w.field_str("op", "submit");
            let op = raw_flag(args, "--op")?.ok_or_else(|| {
                CliError::Usage("submit needs --op <analyze|place|simulate|sweep>".into())
            })?;
            let app = raw_flag(args, "--app")?
                .ok_or_else(|| CliError::Usage("submit needs --app <name>".into()))?;
            w.key("job");
            w.begin_object();
            w.field_str("op", op);
            w.field_str("app", app);
            w.field_f64(
                "scale",
                flag(args, "--scale")?.unwrap_or_else(|| placesim::scale_from_env(0.1)),
            );
            w.field_u64("seed", uint_flag(args, "--seed")?.unwrap_or(1994));
            if let Some(p) = raw_flag(args, "--protocol")? {
                w.field_str("protocol", p);
            }
            if let Some(list) = raw_flag(args, "--algos")? {
                w.key("algorithms");
                w.begin_array();
                for a in list.split(',') {
                    w.value_str(a.trim());
                }
                w.end_array();
            }
            if let Some(list) = raw_flag(args, "--procs")? {
                w.key("processors");
                w.begin_array();
                for p in parse_procs(list)? {
                    w.value_u64(p as u64);
                }
                w.end_array();
            }
            w.end_object();
        }
        other => {
            return Err(CliError::Usage(format!("unknown client verb {other}")));
        }
    }
    w.end_object();
    let request = w.finish();

    let mut stream = UnixStream::connect(&socket)
        .map_err(|e| CliError::Runtime(format!("cannot connect to {socket}: {e}")))?;
    stream.set_read_timeout(Some(Duration::from_secs(630))).ok();
    writeln!(stream, "{request}").map_err(|e| CliError::Runtime(format!("send failed: {e}")))?;
    let mut response = String::new();
    BufReader::new(&stream)
        .read_line(&mut response)
        .map_err(|e| CliError::Runtime(format!("receive failed: {e}")))?;
    let response = response.trim_end().to_owned();
    if response.is_empty() {
        return Err(CliError::Runtime("daemon closed the connection".into()));
    }

    let doc = json::parse(&response)
        .map_err(|e| CliError::Runtime(format!("unparseable response: {e}")))?;
    if args.iter().any(|a| a == "--raw") {
        // Print only the embedded result document (the canonical bytes
        // the byte-identity proof compares).
        let result = doc
            .get("result")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| CliError::Runtime(format!("no result in response: {response}")))?;
        println!("{result}");
    } else {
        println!("{response}");
    }
    if doc.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        return Err(CliError::Runtime(format!(
            "daemon rejected the request: {}",
            doc.get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown error")
        )));
    }
    if let Some("failed") = doc.get("state").and_then(JsonValue::as_str) {
        return Err(CliError::Runtime(format!(
            "job failed: {}",
            doc.get("reason")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown reason")
        )));
    }
    Ok(())
}

#[cfg(not(unix))]
fn cmd_client(_args: &[String]) -> Result<(), CliError> {
    Err(CliError::Runtime(
        "client needs a Unix socket; this platform has none".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = s(&["gen", "fft", "--scale", "0.25", "--seed", "7"]);
        assert_eq!(flag(&args, "--scale").unwrap(), Some(0.25));
        assert_eq!(uint_flag(&args, "--seed").unwrap(), Some(7));
        assert_eq!(flag(&args, "--missing").unwrap(), None);
        assert_eq!(uint_flag(&args, "--missing").unwrap(), None);
        assert!(flag(&s(&["--scale"]), "--scale").is_err());
        assert!(flag(&s(&["--scale", "abc"]), "--scale").is_err());
        assert!(flag(&s(&["--scale", "inf"]), "--scale").is_err());
    }

    #[test]
    fn integer_flags_reject_non_integers() {
        // The historical parser accepted any f64 and `as`-cast it, so
        // `--seed -3` silently became 0 and `--latency 2.7` became 2.
        for bad in ["-3", "2.7", "abc", "1e3", "99999999999999999999999"] {
            let args = s(&["--seed", bad]);
            let err = uint_flag(&args, "--seed").unwrap_err();
            assert!(err.contains("non-negative integer"), "{bad}: {err}");
        }
        assert!(uint_flag(&s(&["--seed"]), "--seed").is_err());
        // Full-command paths reject too.
        assert!(run(&s(&["gen", "fft", "/tmp/x.trace", "--seed", "-1"])).is_err());
    }

    #[test]
    fn sim_threads_flag_parses_strictly() {
        assert_eq!(sim_threads_flag(&s(&[])).unwrap(), 1);
        assert_eq!(sim_threads_flag(&s(&["--sim-threads", "4"])).unwrap(), 4);
        for bad in ["0", "-2", "2.5", "junk", ""] {
            let args = s(&["--sim-threads", bad]);
            assert!(sim_threads_flag(&args).is_err(), "{bad:?} must be rejected");
        }
        assert!(sim_threads_flag(&s(&["--sim-threads"])).is_err());
    }

    #[test]
    fn sim_threads_junk_is_a_usage_error() {
        // Exit-code taxonomy: a bad --sim-threads is a usage error (2),
        // even before the trace is touched.
        let err = run(&s(&[
            "simulate",
            "/nonexistent.trace",
            "LOAD-BAL",
            "4",
            "--sim-threads",
            "zero",
        ]))
        .unwrap_err();
        assert_eq!(err.code(), 2);
        assert!(err.message().contains("--sim-threads"));
        let err = run(&s(&[
            "sweep",
            "fft",
            "--journal",
            "/tmp/never-written.journal",
            "--sim-threads",
            "0",
        ]))
        .unwrap_err();
        assert_eq!(err.code(), 2);
    }

    /// Round-trip: the same simulation through `--sim-threads 1` and
    /// `--sim-threads 4` writes identical result entries (bit-identical
    /// engines), differing only in wall time and the obs report.
    #[test]
    fn sim_threads_roundtrip_identical_results() {
        let dir = std::env::temp_dir().join("placesim-cli-simthreads-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("fft.trace");
        let trace_s = trace.to_str().unwrap().to_string();
        run(&s(&[
            "gen", "fft", &trace_s, "--scale", "0.002", "--seed", "3",
        ]))
        .unwrap();

        let results = |n: &str| -> String {
            let metrics = dir.join(format!("run-{n}.json"));
            let metrics_s = metrics.to_str().unwrap().to_string();
            run(&s(&[
                "simulate",
                &trace_s,
                "LOAD-BAL",
                "4",
                "--sim-threads",
                n,
                "--metrics",
                &metrics_s,
            ]))
            .unwrap();
            let body = std::fs::read_to_string(&metrics).unwrap();
            RunManifest::validate(&body).unwrap();
            std::fs::remove_file(&metrics).ok();
            let start = body.find("\"results\"").expect("results key");
            let end = body.find("\"obs\"").expect("obs key");
            body[start..end].to_string()
        };
        assert_eq!(results("1"), results("4"));
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn protocol_flag_parses_strictly() {
        assert_eq!(protocol_flag(&s(&[])).unwrap(), None);
        assert_eq!(
            protocol_flag(&s(&["--protocol", "wi"])).unwrap(),
            Some(Protocol::Wi)
        );
        assert_eq!(
            protocol_flag(&s(&["--protocol", "mesi"])).unwrap(),
            Some(Protocol::Mesi)
        );
        assert_eq!(
            protocol_flag(&s(&["--protocol", "dragon"])).unwrap(),
            Some(Protocol::Dragon)
        );
        for bad in ["moesi", "MESI", "wi ", "", "2"] {
            let err = protocol_flag(&s(&["--protocol", bad])).unwrap_err();
            assert!(err.contains("unknown protocol"), "{bad:?}: {err}");
        }
        assert!(protocol_flag(&s(&["--protocol"])).is_err());
    }

    #[test]
    fn protocol_junk_is_a_usage_error() {
        // Junk --protocol is exit 2 on every command that takes it,
        // before the filesystem is touched.
        for argv in [
            vec![
                "simulate",
                "/nonexistent.trace",
                "LOAD-BAL",
                "4",
                "--protocol",
                "moesi",
            ],
            vec![
                "sweep",
                "fft",
                "--journal",
                "/tmp/never-written.journal",
                "--protocol",
                "moesi",
            ],
            vec!["report", "/nonexistent.json", "--protocol", "moesi"],
        ] {
            let err = run(&s(&argv)).unwrap_err();
            assert_eq!(err.code(), 2, "{argv:?} -> {err:?}");
            assert!(err.message().contains("unknown protocol"), "{err:?}");
        }
    }

    /// `simulate --protocol` flows into the metrics manifest, and the
    /// report's grouping carries it; MESI never takes upgrade traffic
    /// where WI does.
    #[test]
    fn simulate_protocol_reaches_manifest_and_report() {
        let dir = std::env::temp_dir().join("placesim-cli-protocol-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("fft.trace");
        let trace_s = trace.to_str().unwrap().to_string();
        run(&s(&[
            "gen", "fft", &trace_s, "--scale", "0.002", "--seed", "3",
        ]))
        .unwrap();

        for protocol in ["wi", "mesi", "dragon"] {
            let metrics = dir.join(format!("{protocol}.json"));
            let metrics_s = metrics.to_str().unwrap().to_string();
            run(&s(&[
                "simulate",
                &trace_s,
                "LOAD-BAL",
                "4",
                "--protocol",
                protocol,
                "--metrics",
                &metrics_s,
            ]))
            .unwrap();
            let body = std::fs::read_to_string(&metrics).unwrap();
            RunManifest::validate(&body).unwrap();
            assert!(
                body.contains(&format!("\"protocol\": \"{protocol}\"")),
                "{protocol} missing from manifest config"
            );
        }

        // Filtered report keeps only the requested protocol's manifests.
        let dir_s = dir.to_str().unwrap().to_string();
        let out = dir.join("report.json");
        let out_s = out.to_str().unwrap().to_string();
        std::fs::remove_file(&trace).unwrap();
        run(&s(&[
            "report",
            &dir_s,
            "--protocol",
            "dragon",
            "--json",
            &out_s,
        ]))
        .unwrap();
        let doc = placesim_obs::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let groups = doc.get("groups").and_then(|v| v.as_array()).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(
            groups[0].get("protocol").and_then(|v| v.as_str()),
            Some("dragon")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn algorithm_parsing() {
        assert_eq!(
            parse_algorithm("share-refs").unwrap(),
            PlacementAlgorithm::ShareRefs
        );
        assert_eq!(
            parse_algorithm("LOAD-BAL").unwrap(),
            PlacementAlgorithm::LoadBal
        );
        assert!(parse_algorithm("bogus").is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn suite_command_runs() {
        run(&s(&["suite"])).unwrap();
    }

    #[test]
    fn gen_info_analyze_roundtrip() {
        let dir = std::env::temp_dir().join("placesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fft.trace");
        let path_s = path.to_str().unwrap().to_string();

        run(&s(&[
            "gen", "fft", &path_s, "--scale", "0.002", "--seed", "3",
        ]))
        .unwrap();
        run(&s(&["info", &path_s])).unwrap(); // compressed v2 loads
        run(&s(&[
            "gen", "fft", &path_s, "--scale", "0.002", "--seed", "3", "--flat",
        ]))
        .unwrap();
        run(&s(&["info", &path_s])).unwrap();
        run(&s(&["analyze", &path_s])).unwrap();
        run(&s(&["place", &path_s, "LOAD-BAL", "4"])).unwrap();
        run(&s(&[
            "simulate",
            &path_s,
            "RANDOM",
            "4",
            "--cache-kb",
            "32",
            "--assoc",
            "2",
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    /// `gen --format v3` writes a streaming trace that decodes to the
    /// exact program v2 stores, and every subcommand accepts it — the
    /// analysis commands without materializing it.
    #[test]
    fn gen_v3_roundtrips_and_all_commands_accept_it() {
        let dir = std::env::temp_dir().join("placesim-cli-v3-test");
        std::fs::create_dir_all(&dir).unwrap();
        let v2 = dir.join("fft-v2.trace");
        let v3 = dir.join("fft-v3.trace");
        let v2_s = v2.to_str().unwrap().to_string();
        let v3_s = v3.to_str().unwrap().to_string();
        let base = ["gen", "fft", "", "--scale", "0.002", "--seed", "3"];
        let mut argv = base;
        argv[2] = &v2_s;
        run(&s(&argv)).unwrap();
        let mut argv: Vec<&str> = base.to_vec();
        argv[2] = &v3_s;
        argv.extend(["--format", "v3"]);
        run(&s(&argv)).unwrap();

        assert_eq!(trace_version(&v3_s).unwrap(), Some(stream::VERSION));
        assert_eq!(
            load_trace(&v3_s).unwrap(),
            load_trace(&v2_s).unwrap(),
            "v3 must decode to the identical program"
        );

        run(&s(&["info", &v3_s])).unwrap();
        run(&s(&["analyze", &v3_s])).unwrap();
        run(&s(&["place", &v3_s, "SHARE-REFS", "4"])).unwrap();
        run(&s(&["simulate", &v3_s, "LOAD-BAL", "4"])).unwrap();

        // The streamed analysis feeds placement the same inputs.
        let prog = load_trace(&v2_s).unwrap();
        let reader = stream::FileReader::open(&v3).unwrap();
        let streamed =
            SharingAnalysis::measure_streamed(&reader, &SpillBudget::from_env()).unwrap();
        assert_eq!(streamed, SharingAnalysis::measure(&prog));
        assert_eq!(reader.instr_lengths(), thread_lengths(&prog));

        std::fs::remove_file(&v2).ok();
        std::fs::remove_file(&v3).ok();
    }

    #[test]
    fn gen_format_flag_is_strict() {
        for argv in [
            vec!["gen", "fft", "/tmp/x.trace", "--format", "v9"],
            vec!["gen", "fft", "/tmp/x.trace", "--format", "3"],
            vec!["gen", "fft", "/tmp/x.trace", "--format"],
            vec!["gen", "fft", "/tmp/x.trace", "--flat", "--format", "v3"],
        ] {
            assert!(run(&s(&argv)).is_err(), "{argv:?} must be rejected");
        }
    }

    #[test]
    fn simulate_and_probe_emit_valid_metrics() {
        let dir = std::env::temp_dir().join("placesim-cli-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("fft.trace");
        let trace_s = trace.to_str().unwrap().to_string();
        let metrics = dir.join("run.json");
        let metrics_s = metrics.to_str().unwrap().to_string();

        run(&s(&[
            "gen", "fft", &trace_s, "--scale", "0.002", "--seed", "3",
        ]))
        .unwrap();
        run(&s(&[
            "simulate",
            &trace_s,
            "LOAD-BAL",
            "4",
            "--metrics",
            &metrics_s,
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&metrics).unwrap();
        RunManifest::validate(&body).unwrap();
        assert!(body.contains("\"tool\": \"simulate\""));
        assert!(body.contains("\"algorithm\": \"LOAD-BAL\""));
        assert!(!sink::tmp_sibling(&metrics).exists());

        run(&s(&["probe", &trace_s, "--metrics", &metrics_s])).unwrap();
        let body = std::fs::read_to_string(&metrics).unwrap();
        RunManifest::validate(&body).unwrap();
        assert!(body.contains("\"tool\": \"probe\""));

        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn failed_gen_leaves_no_partial_trace() {
        let dir = std::env::temp_dir().join("placesim-cli-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        // A target inside a nonexistent directory: the temporary file
        // cannot even be created, and nothing may appear at the target.
        let out = dir.join("no-such-subdir").join("x.trace");
        let out_s = out.to_str().unwrap().to_string();
        assert!(run(&s(&["gen", "fft", &out_s, "--scale", "0.002"])).is_err());
        assert!(!out.exists());
        assert!(!sink::tmp_sibling(&out).exists());

        // A successful gen cleans up its temporary sibling.
        let ok = dir.join("ok.trace");
        let ok_s = ok.to_str().unwrap().to_string();
        run(&s(&["gen", "fft", &ok_s, "--scale", "0.002"])).unwrap();
        assert!(ok.exists());
        assert!(!sink::tmp_sibling(&ok).exists());
        std::fs::remove_file(&ok).ok();
    }

    #[test]
    fn analyze_and_place_emit_valid_metrics() {
        let dir = std::env::temp_dir().join("placesim-cli-frontend-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("fft.trace");
        let trace_s = trace.to_str().unwrap().to_string();
        run(&s(&[
            "gen", "fft", &trace_s, "--scale", "0.002", "--seed", "3",
        ]))
        .unwrap();

        for (cmd, extra) in [("analyze", vec![]), ("place", vec!["LOAD-BAL", "4"])] {
            let metrics = dir.join(format!("{cmd}.json"));
            let metrics_s = metrics.to_str().unwrap().to_string();
            let mut argv = vec![cmd, &trace_s];
            argv.extend(extra);
            argv.extend(["--metrics", &metrics_s]);
            run(&s(&argv)).unwrap();
            let body = std::fs::read_to_string(&metrics).unwrap();
            RunManifest::validate(&body).unwrap();
            assert!(body.contains(&format!("\"tool\": \"{cmd}\"")));
            std::fs::remove_file(&metrics).ok();
        }
        std::fs::remove_file(&trace).ok();
    }

    /// End-to-end: two simulated manifests aggregate into one report,
    /// the report survives a `--json` round-trip, an identical baseline
    /// passes, and an injected regression fails with a nonzero exit.
    #[test]
    fn report_aggregates_and_checks_baseline() {
        let dir = std::env::temp_dir().join("placesim-cli-report-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("fft.trace");
        let trace_s = trace.to_str().unwrap().to_string();
        run(&s(&[
            "gen", "fft", &trace_s, "--scale", "0.002", "--seed", "3",
        ]))
        .unwrap();

        let mut paths = Vec::new();
        for algo in ["RANDOM", "LOAD-BAL"] {
            let m = dir.join(format!("{algo}.json"));
            run(&s(&[
                "simulate",
                &trace_s,
                algo,
                "4",
                "--metrics",
                m.to_str().unwrap(),
            ]))
            .unwrap();
            paths.push(m.to_str().unwrap().to_string());
        }

        // Aggregate explicit files and the directory form identically.
        let out = dir.join("report.json");
        let out_s = out.to_str().unwrap().to_string();
        run(&s(&["report", &paths[0], &paths[1], "--json", &out_s])).unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        let doc = placesim_obs::json::parse(&body).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(placesim::REPORT_SCHEMA)
        );
        std::fs::remove_file(&trace).unwrap();
        // The directory now holds the two manifests plus report.json,
        // which is skipped with a warning rather than failing the scan.
        let dir_s = dir.to_str().unwrap().to_string();
        run(&s(&["report", &dir_s])).unwrap();

        // Identical baseline: clean pass. Injected 50% slowdown: exit
        // nonzero via Err.
        run(&s(&["report", &paths[0], "--baseline", &paths[0]])).unwrap();
        let slow = std::fs::read_to_string(&paths[0]).unwrap();
        let fast_time: u64 = {
            let doc = placesim_obs::json::parse(&slow).unwrap();
            let results = doc.get("results").and_then(|v| v.as_array()).unwrap();
            results[0]
                .get("execution_time")
                .and_then(|v| v.as_u64())
                .unwrap()
        };
        let injected = slow.replace(
            &format!("\"execution_time\": {fast_time}"),
            &format!("\"execution_time\": {}", fast_time + fast_time / 2),
        );
        let slow_path = dir.join("slow.json");
        std::fs::write(&slow_path, injected).unwrap();
        let err = run(&s(&[
            "report",
            slow_path.to_str().unwrap(),
            "--baseline",
            &paths[0],
            "--threshold",
            "2",
        ]))
        .unwrap_err();
        assert!(err.message().contains("regression"), "{err:?}");
        assert!(run(&s(&["report", &dir_s, "--bogus"])).is_err());
        assert!(run(&s(&["report"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `simulate --attribution` writes a report the strict parser
    /// accepts in every build, serial and parallel agree byte-for-byte,
    /// and `attribute` renders it; with `obs` enabled the report
    /// carries events.
    #[test]
    fn simulate_attribution_roundtrips_through_attribute() {
        let dir = std::env::temp_dir().join("placesim-cli-attribution-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("water.trace");
        let trace_s = trace.to_str().unwrap().to_string();
        run(&s(&[
            "gen", "water", &trace_s, "--scale", "0.002", "--seed", "3",
        ]))
        .unwrap();

        let report = |threads: &str| -> String {
            let out = dir.join(format!("attr-{threads}.json"));
            let out_s = out.to_str().unwrap().to_string();
            run(&s(&[
                "simulate",
                &trace_s,
                "SHARE-REFS",
                "4",
                "--protocol",
                "mesi",
                "--sim-threads",
                threads,
                "--attribution",
                &out_s,
            ]))
            .unwrap();
            assert!(!sink::tmp_sibling(&out).exists());
            std::fs::read_to_string(&out).unwrap()
        };
        let serial = report("1");
        assert_eq!(serial, report("4"), "parallel attribution must agree");

        let doc = placesim_obs::attribution::parse(&serial).unwrap();
        assert_eq!(doc.protocol, "mesi");
        #[cfg(feature = "obs")]
        {
            assert!(doc.enabled);
            assert!(doc.events() > 0, "water shares lines: events expected");
            assert!(!doc.top.is_empty());
        }
        #[cfg(not(feature = "obs"))]
        assert!(!doc.enabled);

        // The renderer accepts the file; junk does not.
        let attr_path = dir.join("attr-1.json");
        run(&s(&["attribute", attr_path.to_str().unwrap()])).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, b"{\"schema\": \"nope\"}").unwrap();
        let err = run(&s(&["attribute", bad.to_str().unwrap()])).unwrap_err();
        assert_eq!(err.code(), 1, "{err:?}");
        assert!(run(&s(&["attribute"])).is_err());

        // --timeline and --attribution compose in one invocation.
        let both_attr = dir.join("both-attr.json");
        let both_tl = dir.join("both-tl.json");
        run(&s(&[
            "simulate",
            &trace_s,
            "SHARE-REFS",
            "4",
            "--protocol",
            "mesi",
            "--timeline",
            both_tl.to_str().unwrap(),
            "--attribution",
            both_attr.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&both_attr).unwrap(),
            serial,
            "attribution must not depend on --timeline"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `sweep --attribution --telemetry` writes a merged sweep-level
    /// attribution report and a final telemetry document with every
    /// cell folded in.
    #[test]
    fn sweep_attribution_and_telemetry_outputs_validate() {
        let dir = std::env::temp_dir().join("placesim-cli-sweep-attr-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("sweep.journal");
        let attr_out = dir.join("attr.json");
        let telemetry = dir.join("live.json");
        run(&s(&[
            "sweep",
            "water",
            "--journal",
            journal.to_str().unwrap(),
            "--scale",
            "0.002",
            "--seed",
            "3",
            "--algos",
            "RANDOM,LOAD-BAL",
            "--procs",
            "2,4",
            "--attribution",
            attr_out.to_str().unwrap(),
            "--telemetry",
            telemetry.to_str().unwrap(),
        ]))
        .unwrap();

        let body = std::fs::read_to_string(&attr_out).unwrap();
        let doc = placesim_obs::attribution::parse(&body).unwrap();
        #[cfg(feature = "obs")]
        {
            assert!(doc.enabled);
            assert!(doc.events() > 0, "four attributed cells: events expected");
        }
        #[cfg(not(feature = "obs"))]
        assert!(!doc.enabled);

        let live =
            placesim_obs::json::parse(&std::fs::read_to_string(&telemetry).unwrap()).unwrap();
        assert_eq!(
            live.get("schema").and_then(|v| v.as_str()),
            Some(placesim::TELEMETRY_SCHEMA)
        );
        assert_eq!(live.get("cells_total").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(live.get("cells_done").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(live.get("cells_failed").and_then(|v| v.as_u64()), Some(0));
        assert!(!sink::tmp_sibling(&telemetry).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `simulate --timeline` writes a Chrome trace-event file that the
    /// strict parser accepts, in every build; with `obs` enabled the
    /// stream is non-empty.
    #[test]
    fn simulate_timeline_writes_chrome_json() {
        let dir = std::env::temp_dir().join("placesim-cli-timeline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("water.trace");
        let trace_s = trace.to_str().unwrap().to_string();
        run(&s(&[
            "gen", "water", &trace_s, "--scale", "0.002", "--seed", "3",
        ]))
        .unwrap();
        let out = dir.join("timeline.json");
        let out_s = out.to_str().unwrap().to_string();
        run(&s(&[
            "simulate",
            &trace_s,
            "SHARE-REFS",
            "4",
            "--timeline",
            &out_s,
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        let doc = placesim_obs::json::parse(&body).unwrap();
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        #[cfg(feature = "obs")]
        assert!(events.len() > 1, "obs build must record events");
        #[cfg(not(feature = "obs"))]
        let _ = events;
        assert!(!sink::tmp_sibling(&out).exists());
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run(&s(&["info", "/nonexistent/x.trace"])).unwrap_err();
        assert!(err.message().contains("cannot open"));
    }

    #[test]
    fn exit_codes_are_distinct() {
        assert_eq!(CliError::Runtime("x".into()).code(), 1);
        assert_eq!(CliError::Usage("x".into()).code(), 2);
        assert_eq!(CliError::PartialSweep("x".into()).code(), 3);
        assert_eq!(CliError::CorruptJournal("x".into()).code(), 4);
        // Legacy String errors keep their historical usage classification.
        let legacy: CliError = String::from("old-style").into();
        assert!(matches!(legacy, CliError::Usage(_)));
        assert_eq!(legacy.message(), "old-style");
    }

    #[test]
    fn sweep_usage_errors() {
        // Missing journal, unknown app, bad lists: all usage (exit 2).
        for argv in [
            vec!["sweep"],
            vec!["sweep", "water"],
            vec!["sweep", "no-such-app", "--journal", "/tmp/x.journal"],
            vec![
                "sweep",
                "water",
                "--journal",
                "/tmp/x.journal",
                "--procs",
                "0",
            ],
            vec![
                "sweep",
                "water",
                "--journal",
                "/tmp/x.journal",
                "--algos",
                "BOGUS",
            ],
        ] {
            let err = run(&s(&argv)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{argv:?} -> {err:?}");
        }
        assert!(parse_procs("2,4,8").unwrap() == vec![2, 4, 8]);
        assert!(parse_procs("").is_err());
        assert!(parse_procs("2,x").is_err());
    }

    /// End-to-end sweep → kill-free resume → byte-identical report: a
    /// full sweep writes a report; the journal is truncated to simulate
    /// an interrupted run; `--resume` completes the grid and the second
    /// report is byte-identical to the first.
    #[test]
    fn sweep_resume_reproduces_report_bit_identically() {
        let dir = std::env::temp_dir().join("placesim-cli-sweep-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("sweep.journal");
        let journal_s = journal.to_str().unwrap().to_string();
        let report1 = dir.join("full.json");
        let report2 = dir.join("resumed.json");

        let base = [
            "sweep",
            "water",
            "--journal",
            &journal_s,
            "--scale",
            "0.002",
            "--seed",
            "3",
            "--algos",
            "RANDOM,LOAD-BAL",
            "--procs",
            "2,4",
        ];
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--report", report1.to_str().unwrap()]);
        run(&s(&argv)).unwrap();

        // Chop the journal down to the header + 2 committed cells, as a
        // mid-sweep SIGKILL would leave it (plus a torn half-line).
        let text = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(text.lines().count(), 5, "header + 4 cells");
        let mut prefix: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        prefix.push_str("deadbeef"); // torn tail
        std::fs::write(&journal, prefix).unwrap();

        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--resume", "--report", report2.to_str().unwrap()]);
        run(&s(&argv)).unwrap();

        let a = std::fs::read(&report1).unwrap();
        let b = std::fs::read(&report2).unwrap();
        assert_eq!(a, b, "resumed report must be byte-identical");

        // Resuming under a different grid is a corrupt-journal error
        // (exit 4), not a silent mixed report.
        let err = run(&s(&[
            "sweep",
            "water",
            "--journal",
            &journal_s,
            "--scale",
            "0.002",
            "--seed",
            "3",
            "--algos",
            "RANDOM",
            "--procs",
            "2,4",
            "--resume",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::CorruptJournal(_)), "{err:?}");

        // Same grid, different protocol: the header pins the protocol,
        // so this is also a mismatch (exit 4), not a mixed sweep.
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--protocol", "mesi", "--resume"]);
        let err = run(&s(&argv)).unwrap_err();
        assert!(matches!(err, CliError::CorruptJournal(_)), "{err:?}");
        assert!(err.message().contains("protocol"), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Archived-trace round-trip through the new sharded front-end: the
    /// analysis of a loaded trace matches the in-memory original (both
    /// via the fused path and the reference path), and placements on the
    /// archive agree between cached and fresh engine scoring — i.e. the
    /// `analyze`/`place` subcommands see exactly what `gen` measured.
    #[test]
    fn archived_trace_analysis_matches_original() {
        use placesim_placement::ScoreMode;

        let dir = std::env::temp_dir().join("placesim-cli-archive-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("water.trace");
        let path_s = path.to_str().unwrap().to_string();

        let spec = placesim_workloads::spec("water").unwrap();
        let opts = GenOptions {
            scale: 0.002,
            seed: 11,
        };
        let prog = generate(&spec, &opts);
        let file = File::create(&path).unwrap();
        compress::write_program(&prog, BufWriter::new(file)).unwrap();

        let loaded = load_trace(&path_s).unwrap();
        let archived = SharingAnalysis::measure(&loaded);
        assert_eq!(archived, SharingAnalysis::measure(&prog));
        assert_eq!(archived, SharingAnalysis::measure_reference(&loaded));

        let lengths = thread_lengths(&loaded);
        let inputs = PlacementInputs::new(&archived, &lengths);
        for algo in [
            PlacementAlgorithm::ShareRefs,
            PlacementAlgorithm::ShareAddrLb,
            PlacementAlgorithm::MinPriv,
        ] {
            assert_eq!(
                algo.place_with_mode(&inputs, 4, ScoreMode::Cached).unwrap(),
                algo.place_with_mode(&inputs, 4, ScoreMode::Fresh).unwrap(),
                "{algo} diverged on the archived trace"
            );
        }

        // The user-facing subcommands run end-to-end on the archive.
        run(&s(&["analyze", &path_s])).unwrap();
        run(&s(&["place", &path_s, "SHARE-REFS", "4"])).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
