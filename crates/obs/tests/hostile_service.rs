//! Hostile-input tests for the `placesim-service-v1` request parser:
//! no frame a peer can write may crash the daemon's front door or
//! pre-allocate more than a small multiple of its own size.
//!
//! Mirrors the attribution hostile suite: a tracking global allocator
//! measures peak heap growth, and every parse — byte soup, mutated
//! valid requests, lying counts and lengths, floods without newlines —
//! must return a typed `ProtoError` (or a correct parse) under a hard
//! allocation cap. The allocator needs `unsafe`; the library forbids
//! it, this test binary opts in locally.

use placesim_obs::proto::{
    self, parse_request, read_frame, ProtoError, Request, MAX_FRAME_BYTES, MAX_LIST_ITEMS,
};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Cursor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Wraps the system allocator, tracking current and peak live bytes.
struct TrackingAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

// SAFETY: delegates allocation verbatim to `System`; the bookkeeping is
// plain atomic arithmetic on the side.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let live = self.current.fetch_add(layout.size(), Ordering::SeqCst) + layout.size();
            self.peak.fetch_max(live, Ordering::SeqCst);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.current.fetch_sub(layout.size(), Ordering::SeqCst);
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc {
    current: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

/// Serializes measured sections: the test harness runs `#[test]` fns on
/// parallel threads, and concurrent allocations would pollute the peak.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f`, returning its result and the peak heap growth (bytes above
/// the live size at entry) during the call.
fn measured_peak<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let base = ALLOC.current.load(Ordering::SeqCst);
    ALLOC.peak.store(base, Ordering::SeqCst);
    let result = f();
    let peak = ALLOC.peak.load(Ordering::SeqCst);
    (peak.saturating_sub(base), result)
}

/// Allocation bound for parsing `input_len` bytes of request: the JSON
/// tree and the parsed spec legitimately outgrow the text by a small
/// factor, plus a fixed constant for parser temporaries.
fn alloc_bound(input_len: usize) -> usize {
    input_len * 32 + 64 * 1024
}

fn submit_line(job: &str) -> String {
    format!("{{\"schema\": \"placesim-service-v1\", \"op\": \"submit\", \"job\": {job}}}")
}

const SIM_JOB: &str = "{\"op\": \"simulate\", \"app\": \"water\", \"scale\": 0.002, \
                       \"seed\": 3, \"algorithms\": [\"LOAD-BAL\"], \"processors\": [4]}";

/// A genuine submit parses cleanly under the cap — the cap is not
/// vacuous.
#[test]
fn valid_submit_parses_under_the_cap() {
    let line = submit_line(SIM_JOB);
    let (peak, result) = measured_peak(|| parse_request(&line));
    let Request::Submit(spec) = result.expect("sample must parse") else {
        panic!("not a submit");
    };
    assert_eq!(spec.app, "water");
    assert!(peak <= alloc_bound(line.len()), "peaked at {peak}");
}

/// Requests lying about sizes: giant strings, bloated lists, absurd
/// counts. Each draws a typed rejection with bounded allocation.
#[test]
fn lying_sizes_are_rejected_cheaply() {
    let long_name = "a".repeat(4096);
    let many_algos = format!(
        "[{}]",
        (0..(MAX_LIST_ITEMS + 1))
            .map(|_| "\"LOAD-BAL\"")
            .collect::<Vec<_>>()
            .join(", ")
    );
    let cases: Vec<(String, &str)> = vec![
        (
            submit_line(&SIM_JOB.replace("water", &long_name)),
            "oversized app name",
        ),
        (
            submit_line(&SIM_JOB.replace("[\"LOAD-BAL\"]", &many_algos)),
            "algorithm list beyond the cap",
        ),
        (
            submit_line(&SIM_JOB.replace("[4]", "[18446744073709551615]")),
            "processor count beyond u32",
        ),
        (
            submit_line(&SIM_JOB.replace("\"seed\": 3", "\"seed\": -3")),
            "negative seed",
        ),
        (
            format!(
                "{{\"schema\": \"placesim-service-v1\", \"op\": \"wait\", \"id\": 1, \
                 \"timeout_ms\": 99999999999}}"
            ),
            "wait timeout beyond the cap",
        ),
    ];
    for (line, why) in cases {
        let (peak, result) = measured_peak(|| parse_request(&line));
        assert!(result.is_err(), "`{why}` was accepted");
        assert!(peak <= alloc_bound(line.len()), "`{why}` peaked at {peak}");
    }
}

/// The strict JSON layer rejects duplicate keys, trailing garbage and
/// bare fragments before op dispatch ever runs.
#[test]
fn strict_json_defects_are_syntax_errors() {
    for (line, why) in [
        (
            "{\"schema\": \"placesim-service-v1\", \"op\": \"status\", \
             \"op\": \"shutdown\"}"
                .to_owned(),
            "duplicate op key",
        ),
        (
            "{\"schema\": \"placesim-service-v1\", \"op\": \"status\"} trailing".to_owned(),
            "trailing garbage",
        ),
        ("[1, 2, 3]".to_owned(), "array request"),
        ("\"status\"".to_owned(), "bare string request"),
        (String::new(), "empty frame"),
    ] {
        let (peak, result) = measured_peak(|| parse_request(&line));
        assert!(result.is_err(), "`{why}` was accepted");
        assert!(peak <= alloc_bound(line.len()), "`{why}` peaked at {peak}");
    }
}

/// An in-memory line beyond the frame cap is `Oversized` without ever
/// being parsed — peak allocation must not scale with a deep copy of
/// the flood.
#[test]
fn oversized_lines_shed_before_parsing() {
    let line = format!("{{\"pad\": \"{}\"}}", "x".repeat(MAX_FRAME_BYTES));
    let (peak, result) = measured_peak(|| parse_request(&line));
    assert_eq!(
        result,
        Err(ProtoError::Oversized {
            limit: MAX_FRAME_BYTES
        })
    );
    // The length check runs before the JSON parse: nothing beyond small
    // temporaries may be allocated.
    assert!(peak <= 64 * 1024, "oversized check allocated {peak}");
}

/// `read_frame` against hostile streams: newline-free floods cost at
/// most one frame buffer; truncation and junk UTF-8 are typed errors.
#[test]
fn hostile_streams_are_bounded() {
    // A 16 MiB flood with no newline: the limiter cuts the read at the
    // frame cap, so peak allocation is ~one frame, not the flood.
    let flood = vec![b'z'; 16 * 1024 * 1024];
    let (peak, result) = measured_peak(|| read_frame(Cursor::new(&flood)));
    assert_eq!(
        result,
        Err(ProtoError::Oversized {
            limit: MAX_FRAME_BYTES
        })
    );
    assert!(
        peak <= 4 * MAX_FRAME_BYTES,
        "flood read peaked at {peak} bytes"
    );

    let (_, result) = measured_peak(|| read_frame(Cursor::new(b"half a frame".as_slice())));
    assert_eq!(result, Err(ProtoError::Truncated));

    let (_, result) = measured_peak(|| read_frame(Cursor::new(b"\xff\xfe\xfd\n".as_slice())));
    assert!(matches!(result, Err(ProtoError::Syntax(_))));

    // Clean EOF before any bytes is a graceful `None`.
    let (_, result) = measured_peak(|| read_frame(Cursor::new(b"".as_slice())));
    assert_eq!(result, Ok(None));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte soup: parsing must return Ok or Err — never
    /// panic — with bounded peak allocation.
    #[test]
    fn arbitrary_bytes_never_overallocate(raw in proptest::collection::vec(0u8..=255, 0..512)) {
        let line = String::from_utf8_lossy(&raw).into_owned();
        let (peak, result) = measured_peak(|| parse_request(&line));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(line.len()),
            "{} input bytes peaked at {} allocated bytes",
            line.len(),
            peak
        );
    }

    /// Valid submits with mutated and/or truncated text: graceful error
    /// or valid parse, never a panic or an outsized allocation.
    #[test]
    fn mutated_submits_never_overallocate(
        pos in 0usize..512,
        value in 0u8..=255,
        cut in 0usize..=512,
    ) {
        let mut line = submit_line(SIM_JOB).into_bytes();
        let idx = pos % line.len();
        line[idx] = value;
        if cut < 512 {
            line.truncate(cut % (line.len() + 1));
        }
        let text = String::from_utf8_lossy(&line).into_owned();
        let (peak, result) = measured_peak(|| parse_request(&text));
        drop(result);
        prop_assert!(
            peak <= alloc_bound(text.len()),
            "{} input bytes peaked at {} allocated bytes",
            text.len(),
            peak
        );
    }

    /// Deeply nested JSON aimed at the parser's recursion: the hardened
    /// parser must refuse or parse it iteratively — never blow the
    /// stack — and stay under the cap.
    #[test]
    fn deep_nesting_never_crashes(depth in 1usize..2000) {
        let mut line = String::with_capacity(2 * depth + 64);
        line.push_str("{\"schema\": \"placesim-service-v1\", \"op\": \"submit\", \"job\": ");
        for _ in 0..depth {
            line.push('[');
        }
        for _ in 0..depth {
            line.push(']');
        }
        line.push('}');
        let (peak, result) = measured_peak(|| parse_request(&line));
        prop_assert!(result.is_err());
        prop_assert!(
            peak <= alloc_bound(line.len()),
            "depth {} peaked at {} allocated bytes",
            depth,
            peak
        );
    }

    /// Frames assembled from fragments of a valid request plus noise,
    /// pushed through the streaming reader: every outcome is typed and
    /// bounded.
    #[test]
    fn spliced_streams_never_overallocate(
        prefix_len in 0usize..96,
        noise in proptest::collection::vec(0u8..=255, 0..96),
        terminate in 0u8..=1,
    ) {
        let valid = submit_line(SIM_JOB);
        let mut stream = valid.as_bytes()[..prefix_len.min(valid.len())].to_vec();
        stream.extend_from_slice(&noise);
        if terminate == 1 {
            stream.push(b'\n');
        }
        let (peak, result) = measured_peak(|| {
            read_frame(Cursor::new(&stream)).and_then(|frame| match frame {
                Some(line) => parse_request(&line).map(Some),
                None => Ok(None),
            })
        });
        drop(result);
        prop_assert!(
            peak <= alloc_bound(stream.len()),
            "{} stream bytes peaked at {} allocated bytes",
            stream.len(),
            peak
        );
    }
}

/// The module's exported bounds stay wired to the constants the daemon
/// advertises — a drive-by rename would silently unbound the parser.
#[test]
fn exported_limits_are_sane() {
    assert!(proto::MAX_FRAME_BYTES >= 1024);
    assert!(proto::MAX_LIST_ITEMS >= 2);
    assert!(proto::MAX_STRING_BYTES >= 16);
    assert!(proto::MAX_PROCESSORS >= 64);
    assert!(proto::MAX_WAIT_MS >= 1_000);
}
