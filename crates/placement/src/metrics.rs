//! Pairwise cluster-combining metrics — one per sharing-based algorithm.
//!
//! Each metric scores a candidate combination of two clusters; the
//! engine combines the highest-scoring feasible pair. All sharing-based
//! algorithms differ *only* in this metric (paper §2: "The other
//! sharing-based placement algorithms differ from SHARE-REFS only in the
//! specific sharing metric they compute, i.e., step 2 of the algorithm").

use crate::partition::{CrossId, Partition, SumId};
use crate::score::Score;
use placesim_analysis::SymMatrix;

/// Aggregate-cache handles a metric registered on a [`Partition`] via
/// [`PairMetric::prepare`]; consumed by [`PairMetric::score_cached`].
#[derive(Debug, Clone, Default)]
pub struct MetricCache {
    /// Cross-sum caches, in the order the metric registered them.
    pub cross: Vec<CrossId>,
    /// Per-cluster sum caches, in the order the metric registered them.
    pub sums: Vec<SumId>,
}

/// A pairwise cluster-combining metric.
///
/// Implementations receive the current partition and the indices of the
/// two candidate clusters; higher scores are combined first.
///
/// [`prepare`](Self::prepare) / [`score_cached`](Self::score_cached) are
/// the O(1) fast path: the metric registers its cross-sum and weight-sum
/// aggregates on the partition once, and each pair score becomes cache
/// lookups plus the same arithmetic as [`score`](Self::score). Cached
/// sums are exact `u64` values equal to the fresh ones, so both paths
/// produce bit-identical [`Score`]s — the engine's tie-breaking, and
/// therefore the final placement, cannot differ between them.
pub trait PairMetric {
    /// Scores combining clusters `a` and `b` of `part`.
    fn score(&self, part: &Partition, a: usize, b: usize) -> Score;

    /// Registers this metric's aggregates on `part` for
    /// [`score_cached`](Self::score_cached). The default registers
    /// nothing (cached scoring then falls back to the fresh path).
    fn prepare(&self, _part: &mut Partition) -> MetricCache {
        MetricCache::default()
    }

    /// Scores `a`/`b` using aggregates registered by
    /// [`prepare`](Self::prepare). Must equal [`score`](Self::score)
    /// bit-for-bit.
    fn score_cached(&self, part: &Partition, _cache: &MetricCache, a: usize, b: usize) -> Score {
        self.score(part, a, b)
    }
}

/// Averaged cross-cluster sum of a pairwise thread matrix: the paper's
/// sharing metric
/// `Σ shared-references(tₐ, t_b) / (|cₐ| · |c_b|)` (§2.1 step 2b).
fn averaged_cross(m: &SymMatrix<u64>, part: &Partition, a: usize, b: usize) -> f64 {
    let ca = part.cluster(a);
    let cb = part.cluster(b);
    let sum = m.cross_sum(ca, cb) as f64;
    sum / (ca.len() * cb.len()) as f64
}

/// [`averaged_cross`] over a registered cache: same sum, same division,
/// same bits.
fn averaged_cached(part: &Partition, id: CrossId, a: usize, b: usize) -> f64 {
    let sum = part.cross(id, a, b) as f64;
    sum / (part.cluster(a).len() * part.cluster(b).len()) as f64
}

/// SHARE-REFS: maximize shared references among co-located threads.
#[derive(Debug, Clone, Copy)]
pub struct ShareRefsMetric<'a> {
    /// Pairwise shared-references matrix.
    pub refs: &'a SymMatrix<u64>,
}

impl PairMetric for ShareRefsMetric<'_> {
    fn score(&self, part: &Partition, a: usize, b: usize) -> Score {
        Score::primary(averaged_cross(self.refs, part, a, b))
    }

    fn prepare(&self, part: &mut Partition) -> MetricCache {
        MetricCache {
            cross: vec![part.register_cross(self.refs)],
            sums: Vec::new(),
        }
    }

    fn score_cached(&self, part: &Partition, cache: &MetricCache, a: usize, b: usize) -> Score {
        Score::primary(averaged_cached(part, cache.cross[0], a, b))
    }
}

/// SHARE-ADDR: like SHARE-REFS, but among pairs with equal shared
/// references prefers the smaller shared working set (more references
/// per shared address).
#[derive(Debug, Clone, Copy)]
pub struct ShareAddrMetric<'a> {
    /// Pairwise shared-references matrix.
    pub refs: &'a SymMatrix<u64>,
    /// Pairwise common-address-count matrix.
    pub addrs: &'a SymMatrix<u64>,
}

impl PairMetric for ShareAddrMetric<'_> {
    fn score(&self, part: &Partition, a: usize, b: usize) -> Score {
        let refs = averaged_cross(self.refs, part, a, b);
        let addrs = self.addrs.cross_sum(part.cluster(a), part.cluster(b)) as f64;
        // Density: shared refs per shared address across the cut. With no
        // common addresses the density is 0 (nothing to make better use of).
        let density = if addrs == 0.0 {
            0.0
        } else {
            self.refs.cross_sum(part.cluster(a), part.cluster(b)) as f64 / addrs
        };
        Score::new(refs, density)
    }

    fn prepare(&self, part: &mut Partition) -> MetricCache {
        MetricCache {
            cross: vec![
                part.register_cross(self.refs),
                part.register_cross(self.addrs),
            ],
            sums: Vec::new(),
        }
    }

    fn score_cached(&self, part: &Partition, cache: &MetricCache, a: usize, b: usize) -> Score {
        let refs = averaged_cached(part, cache.cross[0], a, b);
        let addrs = part.cross(cache.cross[1], a, b) as f64;
        let density = if addrs == 0.0 {
            0.0
        } else {
            part.cross(cache.cross[0], a, b) as f64 / addrs
        };
        Score::new(refs, density)
    }
}

/// MIN-PRIV: maximize shared references and, secondarily, minimize the
/// combined cluster's private-address footprint.
#[derive(Debug, Clone)]
pub struct MinPrivMetric<'a> {
    /// Pairwise shared-references matrix.
    pub refs: &'a SymMatrix<u64>,
    /// Per-thread count of private (single-sharer) addresses.
    pub private_addrs: &'a [u64],
}

impl PairMetric for MinPrivMetric<'_> {
    fn score(&self, part: &Partition, a: usize, b: usize) -> Score {
        let refs = averaged_cross(self.refs, part, a, b);
        // Private addresses are touched by exactly one thread, so cluster
        // footprints add without overlap.
        let private: u64 = part
            .cluster(a)
            .iter()
            .chain(part.cluster(b))
            .map(|&t| self.private_addrs[t])
            .sum();
        Score::new(refs, -(private as f64))
    }

    fn prepare(&self, part: &mut Partition) -> MetricCache {
        MetricCache {
            cross: vec![part.register_cross(self.refs)],
            sums: vec![part.register_sum(self.private_addrs)],
        }
    }

    fn score_cached(&self, part: &Partition, cache: &MetricCache, a: usize, b: usize) -> Score {
        let refs = averaged_cached(part, cache.cross[0], a, b);
        let private = part.sum(cache.sums[0], a) + part.sum(cache.sums[0], b);
        Score::new(refs, -(private as f64))
    }
}

/// MIN-INVS: minimize cross-processor invalidation-capable references by
/// combining the pair whose *separation cost* — un-averaged cross-cluster
/// references to write-shared common addresses — is largest.
#[derive(Debug, Clone, Copy)]
pub struct MinInvsMetric<'a> {
    /// Pairwise write-shared-references matrix.
    pub write_refs: &'a SymMatrix<u64>,
}

impl PairMetric for MinInvsMetric<'_> {
    fn score(&self, part: &Partition, a: usize, b: usize) -> Score {
        // The cost of keeping a and b apart. No averaging: the paper
        // frames this as a total cost comparison, not a normalized
        // savings (§2 item 4).
        let cost = self.write_refs.cross_sum(part.cluster(a), part.cluster(b));
        Score::primary(cost as f64)
    }

    fn prepare(&self, part: &mut Partition) -> MetricCache {
        MetricCache {
            cross: vec![part.register_cross(self.write_refs)],
            sums: Vec::new(),
        }
    }

    fn score_cached(&self, part: &Partition, cache: &MetricCache, a: usize, b: usize) -> Score {
        Score::primary(part.cross(cache.cross[0], a, b) as f64)
    }
}

/// MAX-WRITES: SHARE-REFS restricted to write-shared data, the data
/// actually responsible for invalidations.
#[derive(Debug, Clone, Copy)]
pub struct MaxWritesMetric<'a> {
    /// Pairwise write-shared-references matrix.
    pub write_refs: &'a SymMatrix<u64>,
}

impl PairMetric for MaxWritesMetric<'_> {
    fn score(&self, part: &Partition, a: usize, b: usize) -> Score {
        Score::primary(averaged_cross(self.write_refs, part, a, b))
    }

    fn prepare(&self, part: &mut Partition) -> MetricCache {
        MetricCache {
            cross: vec![part.register_cross(self.write_refs)],
            sums: Vec::new(),
        }
    }

    fn score_cached(&self, part: &Partition, cache: &MetricCache, a: usize, b: usize) -> Score {
        Score::primary(averaged_cached(part, cache.cross[0], a, b))
    }
}

/// MIN-SHARE: the "worst case" sharing schedule — co-locate the threads
/// with the *least* shared references to bound the performance range.
#[derive(Debug, Clone, Copy)]
pub struct MinShareMetric<'a> {
    /// Pairwise shared-references matrix.
    pub refs: &'a SymMatrix<u64>,
}

impl PairMetric for MinShareMetric<'_> {
    fn score(&self, part: &Partition, a: usize, b: usize) -> Score {
        Score::primary(-averaged_cross(self.refs, part, a, b))
    }

    fn prepare(&self, part: &mut Partition) -> MetricCache {
        MetricCache {
            cross: vec![part.register_cross(self.refs)],
            sums: Vec::new(),
        }
    }

    fn score_cached(&self, part: &Partition, cache: &MetricCache, a: usize, b: usize) -> Score {
        Score::primary(-averaged_cached(part, cache.cross[0], a, b))
    }
}

/// Coherence-traffic placement (paper §4.2): SHARE-REFS clustering over
/// the *dynamically measured* pairwise coherence-traffic matrix instead
/// of static shared-reference counts.
#[derive(Debug, Clone, Copy)]
pub struct CoherenceMetric<'a> {
    /// Measured pairwise coherence traffic (invalidations + invalidation
    /// misses) between threads, from a one-thread-per-processor run.
    pub traffic: &'a SymMatrix<u64>,
}

impl PairMetric for CoherenceMetric<'_> {
    fn score(&self, part: &Partition, a: usize, b: usize) -> Score {
        Score::primary(averaged_cross(self.traffic, part, a, b))
    }

    fn prepare(&self, part: &mut Partition) -> MetricCache {
        MetricCache {
            cross: vec![part.register_cross(self.traffic)],
            sums: Vec::new(),
        }
    }

    fn score_cached(&self, part: &Partition, cache: &MetricCache, a: usize, b: usize) -> Score {
        Score::primary(averaged_cached(part, cache.cross[0], a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs_matrix() -> SymMatrix<u64> {
        let mut m = SymMatrix::new(4, 0u64);
        m.set(0, 1, 10);
        m.set(0, 2, 2);
        m.set(1, 2, 4);
        m.set(2, 3, 6);
        m
    }

    #[test]
    fn share_refs_averages() {
        let m = refs_matrix();
        let metric = ShareRefsMetric { refs: &m };
        let part = Partition::from_clusters(vec![vec![0, 1], vec![2], vec![3]]);
        // ({0,1},{2}) = (2 + 4) / (2*1) = 3.
        assert_eq!(metric.score(&part, 0, 1), Score::primary(3.0));
        // ({2},{3}) = 6.
        assert_eq!(metric.score(&part, 1, 2), Score::primary(6.0));
    }

    #[test]
    fn share_addr_breaks_ties_by_density() {
        let mut refs = SymMatrix::new(3, 0u64);
        refs.set(0, 1, 8);
        refs.set(0, 2, 8);
        let mut addrs = SymMatrix::new(3, 0u64);
        addrs.set(0, 1, 4); // 8 refs over 4 addresses: density 2
        addrs.set(0, 2, 2); // 8 refs over 2 addresses: density 4
        let metric = ShareAddrMetric {
            refs: &refs,
            addrs: &addrs,
        };
        let part = Partition::singletons(3);
        assert!(metric.score(&part, 0, 2) > metric.score(&part, 0, 1));
    }

    #[test]
    fn share_addr_zero_addresses() {
        let refs = SymMatrix::new(2, 0u64);
        let addrs = SymMatrix::new(2, 0u64);
        let metric = ShareAddrMetric {
            refs: &refs,
            addrs: &addrs,
        };
        let part = Partition::singletons(2);
        assert_eq!(metric.score(&part, 0, 1), Score::new(0.0, 0.0));
    }

    #[test]
    fn min_priv_prefers_small_private_footprint() {
        let mut refs = SymMatrix::new(3, 0u64);
        refs.set(0, 1, 8);
        refs.set(0, 2, 8);
        let private = vec![5u64, 100, 1];
        let metric = MinPrivMetric {
            refs: &refs,
            private_addrs: &private,
        };
        let part = Partition::singletons(3);
        // Equal sharing; thread 2's private footprint is smaller than 1's.
        assert!(metric.score(&part, 0, 2) > metric.score(&part, 0, 1));
    }

    #[test]
    fn min_invs_uses_unaveraged_cost() {
        let mut w = SymMatrix::new(3, 0u64);
        w.set(0, 1, 3);
        w.set(0, 2, 3);
        w.set(1, 2, 1);
        let metric = MinInvsMetric { write_refs: &w };
        let part = Partition::from_clusters(vec![vec![0, 1], vec![2]]);
        // Separation cost of splitting {0,1} from {2}: 3 + 1 = 4, no averaging.
        assert_eq!(metric.score(&part, 0, 1), Score::primary(4.0));
    }

    #[test]
    fn min_share_negates() {
        let m = refs_matrix();
        let metric = MinShareMetric { refs: &m };
        let part = Partition::singletons(4);
        // Pair (0,3) has no sharing: best for MIN-SHARE.
        assert!(metric.score(&part, 0, 3) > metric.score(&part, 0, 1));
    }

    /// Exhaustively checks `score_cached == score` for one metric over a
    /// few combines and undos.
    fn assert_cached_matches_fresh<M: PairMetric>(metric: &M, threads: usize) {
        let mut part = Partition::singletons(threads);
        let cache = metric.prepare(&mut part);
        let check = |part: &Partition| {
            for a in 0..part.len() {
                for b in (a + 1)..part.len() {
                    assert_eq!(
                        metric.score_cached(part, &cache, a, b),
                        metric.score(part, a, b),
                        "clusters ({a},{b})"
                    );
                }
            }
        };
        check(&part);
        let t1 = part.combine(0, 2);
        check(&part);
        let t2 = part.combine(0, 1);
        check(&part);
        part.undo(t2);
        part.undo(t1);
        check(&part);
    }

    #[test]
    fn cached_scores_match_fresh_for_every_metric() {
        let refs = refs_matrix();
        let mut addrs = SymMatrix::new(4, 0u64);
        addrs.set(0, 1, 3);
        addrs.set(2, 3, 2);
        let private = vec![5u64, 100, 1, 7];

        assert_cached_matches_fresh(&ShareRefsMetric { refs: &refs }, 4);
        assert_cached_matches_fresh(
            &ShareAddrMetric {
                refs: &refs,
                addrs: &addrs,
            },
            4,
        );
        assert_cached_matches_fresh(
            &MinPrivMetric {
                refs: &refs,
                private_addrs: &private,
            },
            4,
        );
        assert_cached_matches_fresh(&MinInvsMetric { write_refs: &refs }, 4);
        assert_cached_matches_fresh(&MaxWritesMetric { write_refs: &refs }, 4);
        assert_cached_matches_fresh(&MinShareMetric { refs: &refs }, 4);
        assert_cached_matches_fresh(&CoherenceMetric { traffic: &refs }, 4);
    }

    #[test]
    fn max_writes_and_coherence_average() {
        let mut m = SymMatrix::new(3, 0u64);
        m.set(0, 1, 4);
        m.set(1, 2, 2);
        let part = Partition::from_clusters(vec![vec![0, 1], vec![2]]);
        let mw = MaxWritesMetric { write_refs: &m };
        assert_eq!(mw.score(&part, 0, 1), Score::primary(1.0)); // (0+2)/2

        let co = CoherenceMetric { traffic: &m };
        assert_eq!(co.score(&part, 0, 1), Score::primary(1.0));
    }
}
