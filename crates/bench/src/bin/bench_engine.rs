//! Measures engine throughput (references per second) for the batched
//! hit-run engine against the per-reference reference engine and writes
//! `BENCH_engine.json` at the repository root.
//!
//! Scenarios are chosen to bracket the optimisation:
//!
//! * `p1-hot-loop` — one processor, four contexts, cache-resident
//!   working sets: the queue is empty after each pop, so entire hit runs
//!   batch under a single event. This is the fast path's best case.
//! * `p1-water` — a paper workload multiprogrammed onto one processor.
//! * `p4-water` / `p8-water` — the paper's actual sharing experiments:
//!   lockstep cross-processor events cut hit runs at the horizon, so
//!   gains here come mostly from the flat cache slab and the fused
//!   single-pass access.
//!
//! A second section, `parallel_scaling`, measures the work-sharded
//! parallel engine (DESIGN.md §10) against the serial batched engine on
//! gauss-127 and water at 8 simulated processors, with 1/2/4 worker
//! threads. The curve is recorded whatever it shows — on a single-CPU
//! host (`host_cpus` in the output) the workers time-slice one core and
//! the numbers measure pure protocol overhead, not speedup.
//!
//! Usage: `cargo run --release -p placesim-bench --bin bench_engine`.

use placesim::manifest::{ManifestEntry, RunManifest};
use placesim::PreparedApp;
use placesim_machine::{reference, simulate, simulate_parallel, ArchConfig};
use placesim_placement::{PlacementAlgorithm, PlacementMap};
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
use placesim_workloads::{spec, GenOptions};
use std::time::Instant;

/// One measured scenario: both engines over the same inputs.
struct Scenario {
    name: &'static str,
    note: &'static str,
    prog: ProgramTrace,
    map: PlacementMap,
    config: ArchConfig,
}

/// Median wall-clock seconds per run over `samples` timed runs (after
/// one warmup), for a closure executing one full simulation.
fn median_secs(samples: usize, mut run: impl FnMut()) -> f64 {
    run(); // warmup: touch caches, fault pages
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn hot_loop_program() -> (ProgramTrace, PlacementMap) {
    // Four threads, each looping over a 4-line working set disjoint from
    // the others (16 lines total fit the paper cache easily): after the
    // compulsory fills, every reference hits.
    let threads: Vec<ThreadTrace> = (0..4u64)
        .map(|t| {
            (0..200_000u64)
                .map(|i| MemRef::read(Address::new(t * 0x1000 + (i % 4) * 64)))
                .collect()
        })
        .collect();
    let prog = ProgramTrace::new("hot-loop", threads);
    let map = PlacementMap::from_clusters(vec![vec![0, 1, 2, 3]]).unwrap();
    (prog, map)
}

fn main() {
    // PLACESIM_SCALE overrides for CI smoke runs; 0.05 is the recorded
    // benchmark scale.
    let opts = GenOptions {
        scale: placesim::scale_from_env(0.05),
        seed: 1994,
    };
    let app = PreparedApp::prepare(&spec("water").expect("known app"), &opts);

    let mut scenarios = Vec::new();
    let (prog, map) = hot_loop_program();
    scenarios.push(Scenario {
        name: "p1-hot-loop",
        note: "1 processor, 4 contexts, cache-resident: maximal hit-run batching",
        prog,
        map,
        config: ArchConfig::paper_default(),
    });
    for p in [1usize, 4, 8] {
        let name = match p {
            1 => "p1-water",
            4 => "p4-water",
            _ => "p8-water",
        };
        let note = if p == 1 {
            "water multiprogrammed on 1 processor: long uncontested hit runs"
        } else {
            "paper configuration: cross-processor events cut runs at the horizon"
        };
        scenarios.push(Scenario {
            name,
            note,
            prog: app.prog.clone(),
            map: PlacementAlgorithm::LoadBal
                .place(&app.placement_inputs(), p)
                .expect("placement"),
            config: app.config,
        });
    }

    let samples = 9;
    let wall = Instant::now();
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for s in &scenarios {
        let refs = s.prog.total_refs() as f64;
        // One untimed run feeds the manifest's per-scenario summary.
        let stats = simulate(&s.prog, &s.map, &s.config).unwrap();
        entries.push(ManifestEntry::from_stats(
            s.name,
            s.map.processor_count(),
            &stats,
        ));
        let batched = median_secs(samples, || {
            drop(simulate(&s.prog, &s.map, &s.config).unwrap())
        });
        let refr = median_secs(samples, || {
            drop(reference::simulate(&s.prog, &s.map, &s.config).unwrap());
        });
        let batched_rps = refs / batched;
        let reference_rps = refs / refr;
        let speedup = batched_rps / reference_rps;
        println!(
            "{:<12} {:>12.0} refs/s batched | {:>12.0} refs/s reference | {:.2}x",
            s.name, batched_rps, reference_rps, speedup
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"note\": \"{}\",\n",
                "      \"total_refs\": {},\n",
                "      \"batched_refs_per_sec\": {:.0},\n",
                "      \"reference_refs_per_sec\": {:.0},\n",
                "      \"speedup\": {:.3}\n",
                "    }}"
            ),
            s.name,
            s.note,
            s.prog.total_refs(),
            batched_rps,
            reference_rps,
            speedup
        ));
    }

    // Parallel scaling: the work-sharded engine vs the serial batched
    // engine, 8 simulated processors, 1/2/4 workers. Workloads chosen
    // per the paper: gauss (127 threads, the suite's maximum) and water.
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut par_rows = Vec::new();
    for app_name in ["gauss", "water"] {
        let papp = if app_name == "water" {
            // Reuse the already-prepared water app.
            None
        } else {
            Some(PreparedApp::prepare(
                &spec(app_name).expect("known app"),
                &opts,
            ))
        };
        let papp = papp.as_ref().unwrap_or(&app);
        let scenario = format!("{app_name}-8p");
        let map = PlacementAlgorithm::LoadBal
            .place(&papp.placement_inputs(), 8)
            .expect("placement");
        let refs = papp.prog.total_refs() as f64;
        let serial_stats = simulate(&papp.prog, &map, &papp.config).unwrap();
        let serial = median_secs(samples, || {
            drop(simulate(&papp.prog, &map, &papp.config).unwrap());
        });
        let serial_rps = refs / serial;
        let mut worker_rows = Vec::new();
        for workers in [1usize, 2, 4] {
            // The untimed run doubles as a bit-identity spot check.
            let stats = simulate_parallel(&papp.prog, &map, &papp.config, workers).unwrap();
            assert_eq!(serial_stats, stats, "parallel engine diverged in bench");
            let t = median_secs(samples, || {
                drop(simulate_parallel(&papp.prog, &map, &papp.config, workers).unwrap());
            });
            let rps = refs / t;
            println!(
                "{:<12} {:>12.0} refs/s at {} workers | {:.2}x vs serial",
                scenario,
                rps,
                workers,
                rps / serial_rps
            );
            worker_rows.push(format!(
                concat!(
                    "        {{ \"workers\": {}, \"refs_per_sec\": {:.0}, ",
                    "\"speedup_vs_serial\": {:.3} }}"
                ),
                workers,
                rps,
                rps / serial_rps
            ));
        }
        entries.push(ManifestEntry::from_stats(&scenario, 8, &serial_stats));
        par_rows.push(format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"total_refs\": {},\n",
                "      \"serial_refs_per_sec\": {:.0},\n",
                "      \"workers\": [\n{}\n      ]\n",
                "    }}"
            ),
            scenario,
            papp.prog.total_refs(),
            serial_rps,
            worker_rows.join(",\n")
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"engine-throughput\",\n",
            "  \"unit\": \"references per second, median of {} runs\",\n",
            "  \"engines\": {{\n",
            "    \"batched\": \"hit-run batching + flat cache slab + fused access\",\n",
            "    \"reference\": \"one heap event per reference (pre-optimisation engine)\",\n",
            "    \"parallel\": \"work-sharded horizon-window engine (DESIGN.md \\u00a710)\"\n",
            "  }},\n",
            "  \"host_cpus\": {},\n",
            "  \"scenarios\": [\n{}\n  ],\n",
            "  \"parallel_scaling\": [\n{}\n  ]\n",
            "}}\n"
        ),
        samples,
        host_cpus,
        rows.join(",\n"),
        par_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(out, json).expect("write BENCH_engine.json");
    println!("wrote {out}");

    // The run manifest: the machine-readable receipt of what this bench
    // actually simulated (schema-validated and atomically written).
    let mut manifest = RunManifest::new("bench_engine", "water", &app.config);
    manifest.scale = Some(opts.scale);
    manifest.seed = Some(opts.seed);
    manifest.wall_secs = wall.elapsed().as_secs_f64();
    manifest.entries = entries;
    let manifest_out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine.manifest.json"
    );
    manifest
        .write(std::path::Path::new(manifest_out))
        .expect("write BENCH_engine.manifest.json");
    println!("wrote {manifest_out}");
}
