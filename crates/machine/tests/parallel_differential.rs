//! Differential tests: the work-sharded parallel engine must be
//! bit-for-bit equivalent to the serial batched engine — identical
//! [`placesim_machine::SimStats`] (every counter, every processor) and
//! identical coherence-traffic matrices — at 1, 2, 4 and 8 worker
//! threads, over randomized programs, placements, configurations and
//! window lengths.
//!
//! The serial baseline is [`simulate_serial_with_traffic`], which is
//! pinned to the serial engine regardless of `PLACESIM_SIM_THREADS`
//! (CI runs this suite with that variable set).

use placesim_machine::parallel::simulate_parallel_configured;
use placesim_machine::{simulate_serial_with_traffic, ArchConfig, ParConfig};
use placesim_placement::PlacementMap;
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
use proptest::prelude::*;

/// Random program over a small address universe to provoke sharing,
/// conflicts, invalidations and upgrades across shards.
fn arb_program() -> impl Strategy<Value = ProgramTrace> {
    let r#ref = (0u8..3, 0u64..64);
    let thread = proptest::collection::vec(r#ref, 0..150);
    proptest::collection::vec(thread, 1..6).prop_map(|threads| {
        let traces: Vec<ThreadTrace> = threads
            .into_iter()
            .map(|refs| {
                refs.into_iter()
                    .map(|(kind, slot)| {
                        let addr = Address::new(slot * 16); // overlapping lines
                        match kind {
                            0 => MemRef::instr(addr),
                            1 => MemRef::read(addr),
                            _ => MemRef::write(addr),
                        }
                    })
                    .collect()
            })
            .collect();
        ProgramTrace::new("par-diff-prop", traces)
    })
}

/// Programs with barrier phases (equal barrier counts per thread), so
/// the differential covers parks, releases and window truncation.
fn arb_barrier_program() -> impl Strategy<Value = ProgramTrace> {
    let segment = proptest::collection::vec((0u8..3, 0u64..48), 0..30);
    (
        1usize..4,
        proptest::collection::vec(proptest::collection::vec(segment, 3), 1..5),
    )
        .prop_map(|(phases, threads)| {
            let traces: Vec<ThreadTrace> = threads
                .into_iter()
                .map(|segments| {
                    let mut t = ThreadTrace::new();
                    for (pi, seg) in segments.into_iter().take(phases).enumerate() {
                        for (kind, slot) in seg {
                            let addr = Address::new(0x100 + slot * 16);
                            t.push(match kind {
                                0 => MemRef::instr(addr),
                                1 => MemRef::read(addr),
                                _ => MemRef::write(addr),
                            });
                        }
                        if pi + 1 < phases {
                            t.push(MemRef::barrier(pi as u64));
                        }
                    }
                    t
                })
                .collect();
            ProgramTrace::new("par-diff-barrier-prop", traces)
        })
}

fn arb_placement(t: usize, seed: u64) -> PlacementMap {
    // Deterministic pseudo-random balanced clustering.
    let p = 1 + (seed as usize % t.max(1));
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); p.min(t).max(1)];
    for i in 0..t {
        let k = (seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64) >> 7) as usize
            % clusters.len();
        clusters[k].push(i);
    }
    PlacementMap::from_clusters(clusters).expect("valid clusters")
}

/// Randomized machine. Includes occupancy/upgrade-stall configurations
/// (which exercise the parallel entry point's serial fallback) alongside
/// the contention-free ones the windowed protocol actually shards.
fn arb_config() -> impl Strategy<Value = ArchConfig> {
    (0u8..4, 0u8..2, 0u64..4, 0u64..3, 0u8..2).prop_map(|(geom, assoc, switch, occ, stalls)| {
        let (cache, line) = match geom {
            0 => (256, 32),
            1 => (512, 32),
            2 => (1024, 64),
            _ => (4096, 64),
        };
        ArchConfig::builder()
            .cache_size(cache)
            .line_size(line)
            .associativity(1 << (assoc * 2)) // 1- or 4-way
            .context_switch(1 + switch * 5) // 1, 6, 11, 16
            .memory_latency(20 + occ * 30)
            .memory_occupancy(occ * 7) // 0 = contention-free
            .upgrade_stalls(stalls == 1)
            .build()
            .expect("valid random config")
    })
}

/// Serial vs parallel full-state equality on one scenario, across the
/// worker-thread counts the issue pins (1/2/4/8) and the given window.
fn assert_parallel_agrees(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    window: u64,
) {
    let (serial, serial_traffic) =
        simulate_serial_with_traffic(prog, map, config).expect("serial engine");
    for threads in [1usize, 2, 4, 8] {
        let par = ParConfig { threads, window };
        let (stats, traffic) =
            simulate_parallel_configured(prog, map, config, &par).expect("parallel engine");
        assert_eq!(
            serial,
            stats,
            "serial and parallel SimStats diverge (threads={threads}, window={window}, p={}, t={})",
            map.processor_count(),
            prog.thread_count()
        );
        assert_eq!(
            serial_traffic, traffic,
            "serial and parallel traffic matrices diverge (threads={threads}, window={window})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parallel_agrees_on_random_programs(
        prog in arb_program(),
        seed in 1u64..5000,
        config in arb_config(),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        assert_parallel_agrees(&prog, &map, &config, 0); // adaptive window
    }

    #[test]
    fn parallel_agrees_on_barrier_programs(
        prog in arb_barrier_program(),
        seed in 1u64..5000,
        config in arb_config(),
    ) {
        let map = arb_placement(prog.thread_count(), seed);
        assert_parallel_agrees(&prog, &map, &config, 0);
    }

    #[test]
    fn parallel_agrees_under_tiny_windows(
        prog in arb_barrier_program(),
        seed in 1u64..5000,
        config in arb_config(),
        window in 1u64..9,
    ) {
        // Tiny fixed windows force every protocol edge: yields mid hit
        // run, foreign events draining at window boundaries, barrier
        // truncation, parks spanning many windows.
        let map = arb_placement(prog.thread_count(), seed);
        assert_parallel_agrees(&prog, &map, &config, window);
    }
}

/// Satellite edge case: a single simulated processor with more workers
/// than shards — every thread of the program lands in one shard and the
/// pool's surplus workers never receive a job.
#[test]
fn single_processor_shard_with_surplus_workers() {
    let t0: ThreadTrace = (0..300)
        .map(|i| MemRef::instr(Address::new(4 * i)))
        .collect();
    let t1: ThreadTrace = (0..200)
        .map(|i| MemRef::write(Address::new(64 * (i % 17))))
        .collect();
    let prog = ProgramTrace::new("one-proc", vec![t0, t1]);
    let map = PlacementMap::from_clusters(vec![vec![0, 1]]).unwrap();
    for window in [0u64, 3, 64] {
        assert_parallel_agrees(&prog, &map, &ArchConfig::paper_default(), window);
    }
}

/// Satellite edge case: fewer simulated processors than requested
/// workers (p < threads), including processors whose thread exhausts
/// almost immediately — "empty" shards that spend most windows idle.
#[test]
fn more_workers_than_processors() {
    let long: ThreadTrace = (0..400)
        .map(|i| MemRef::read(Address::new(64 * (i % 23))))
        .collect();
    let short: ThreadTrace = (0..2).map(|i| MemRef::instr(Address::new(4 * i))).collect();
    let empty = ThreadTrace::new();
    let prog = ProgramTrace::new("uneven", vec![long, short, empty]);
    let map = PlacementMap::from_clusters(vec![vec![0], vec![1], vec![2]]).unwrap();
    for window in [0u64, 2, 16] {
        assert_parallel_agrees(&prog, &map, &ArchConfig::paper_default(), window);
    }
}

/// Satellite edge case: the window bound landing exactly on (and one
/// cycle either side of) the barrier-release cycle. Sweeping every
/// window length in 1..=48 guarantees some bound coincides with the
/// release key however the cycle arithmetic works out.
#[test]
fn barrier_exactly_on_window_boundary() {
    let mk = |n: u64, base: u64| -> ThreadTrace {
        let mut t: ThreadTrace = (0..n)
            .map(|i| MemRef::read(Address::new(base + 64 * (i % 5))))
            .collect();
        t.push(MemRef::barrier(0));
        for i in 0..n {
            t.push(MemRef::write(Address::new(base + 64 * (i % 5))));
        }
        t
    };
    let prog = ProgramTrace::new("barrier-edge", vec![mk(7, 0), mk(23, 0x1000), mk(40, 0)]);
    let map = PlacementMap::from_clusters(vec![vec![0], vec![1], vec![2]]).unwrap();
    let config = ArchConfig::paper_default();
    for window in 1..=48u64 {
        assert_parallel_agrees(&prog, &map, &config, window);
    }
}

/// Satellite edge case: contexts exhausting mid-window at staggered
/// times — on the same processor (context count shrinks while others
/// keep running) and across processors (a shard goes quiet while its
/// peers still generate foreign events against its cache).
#[test]
fn context_exhaustion_mid_window() {
    let lens = [5u64, 37, 120, 11, 260, 1];
    let threads: Vec<ThreadTrace> = lens
        .iter()
        .enumerate()
        .map(|(ti, &n)| {
            (0..n)
                .map(|i| {
                    if i % 3 == 0 {
                        MemRef::write(Address::new(64 * (i % 7)))
                    } else {
                        MemRef::read(Address::new(64 * ((i + ti as u64) % 7)))
                    }
                })
                .collect()
        })
        .collect();
    let prog = ProgramTrace::new("staggered-exhaustion", threads);
    for clusters in [
        vec![vec![0, 1, 2], vec![3, 4, 5]],
        vec![vec![0, 3], vec![1, 4], vec![2, 5]],
    ] {
        let map = PlacementMap::from_clusters(clusters).unwrap();
        for window in [0u64, 1, 5, 4096] {
            assert_parallel_agrees(&prog, &map, &ArchConfig::paper_default(), window);
        }
    }
}

/// Mailbox stress: maximum workers, minimum window — every shard
/// crosses a channel round-trip roughly once per simulated cycle, and
/// heavy write sharing keeps the validator finding cross-shard events.
/// Repeated to shake out any ordering sensitivity in the handoff.
#[test]
fn mailbox_handoff_stress() {
    let threads: Vec<ThreadTrace> = (0..8)
        .map(|ti: u64| {
            (0..150)
                .map(|i| {
                    let line = (i + ti) % 4; // four hot lines, all shards
                    if (i + ti).is_multiple_of(2) {
                        MemRef::write(Address::new(64 * line))
                    } else {
                        MemRef::read(Address::new(64 * line))
                    }
                })
                .collect()
        })
        .collect();
    let prog = ProgramTrace::new("mailbox-stress", threads);
    let map = PlacementMap::from_clusters((0..8).map(|i| vec![i]).collect()).unwrap();
    let config = ArchConfig::paper_default();
    let (serial, serial_traffic) =
        simulate_serial_with_traffic(&prog, &map, &config).expect("serial engine");
    let par = ParConfig {
        threads: 8,
        window: 2,
    };
    for round in 0..20 {
        let (stats, traffic) =
            simulate_parallel_configured(&prog, &map, &config, &par).expect("parallel engine");
        assert_eq!(serial, stats, "stress round {round}: SimStats diverged");
        assert_eq!(
            serial_traffic, traffic,
            "stress round {round}: traffic diverged"
        );
    }
}
