//! Plain-text table rendering for the experiment harness.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use placesim::report::TextTable;
///
/// let mut t = TextTable::new(["app", "time"]);
/// t.row(["water", "123"]);
/// let s = t.to_string();
/// assert!(s.contains("water"));
/// assert!(s.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the column count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }

        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    write!(f, "  ")?;
                }
                // Right-align numeric-looking cells, left-align the rest.
                if cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-')
                    && cell.chars().all(|c| !c.is_ascii_alphabetic() || c == 'e')
                {
                    write!(f, "{cell:>w$}", w = w)?;
                } else {
                    write!(f, "{cell:<w$}", w = w)?;
                }
            }
            writeln!(f)
        };

        write_row(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a mean ± dev% pair the way the paper's Table 2 prints them.
pub fn fmt_mean_dev(mean: f64, dev_percent: f64) -> String {
    format!("{mean:.0} ({dev_percent:.1}%)")
}

/// Formats a count in thousands (the paper's "(in 1000s)" columns).
pub fn fmt_thousands(x: f64) -> String {
    format!("{:.0}", x / 1000.0)
}

/// Renders `value` as an ASCII bar where `full` maps to `width`
/// characters (the paper's figures are bar charts; this keeps the
/// terminal output evocative of them). Values beyond `full` are capped
/// with a `+` marker.
pub fn ascii_bar(value: f64, full: f64, width: usize) -> String {
    if !(value.is_finite() && full > 0.0) || value <= 0.0 {
        return String::new();
    }
    let frac = value / full;
    if frac > 1.0 {
        let mut bar = "#".repeat(width);
        bar.push('+');
        bar
    } else {
        "#".repeat((frac * width as f64).round().max(1.0) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "12345"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric column right-aligned: "1" ends at same column as "12345".
        let a_end = lines[2].trim_end().len();
        let b_end = lines[3].trim_end().len();
        assert_eq!(a_end, b_end);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        let s = t.to_string();
        assert!(s.contains('x'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.234, 2), "1.23");
        assert_eq!(fmt_mean_dev(527_000.0, 14.0), "527000 (14.0%)");
        assert_eq!(fmt_thousands(527_400.0), "527");
    }

    #[test]
    fn bars() {
        assert_eq!(ascii_bar(0.5, 1.0, 10), "#####");
        assert_eq!(ascii_bar(1.0, 1.0, 10), "##########");
        assert_eq!(ascii_bar(1.4, 1.0, 10), "##########+");
        assert_eq!(ascii_bar(0.001, 1.0, 10), "#", "tiny values still visible");
        assert_eq!(ascii_bar(0.0, 1.0, 10), "");
        assert_eq!(ascii_bar(f64::NAN, 1.0, 10), "");
    }
}
