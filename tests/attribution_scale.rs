//! Acceptance tests for bounded-memory coherence attribution: the
//! Misra–Gries sketch must hold its documented memory bound under a
//! ≥100M-event stream, keep every heavy hitter, and agree with exact
//! mode on paper-scale simulated runs.
//!
//! The always-run test exercises the sketch at a small scale under a
//! tracking-allocator cap. The `#[ignore]` tests are the release-mode
//! headline: a 100M-event stream inside a fixed peak-heap budget
//! (scaled by `PLACESIM_SCALE` so CI can smoke the same path), and
//! exact-vs-sketch top-K agreement on a real gauss simulation.

use placesim_machine::{AttrCollector, AttrKind, AttributionConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tracks live and peak heap bytes so the memory bound is a measured
/// number, not an estimate.
struct TrackingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let live = LIVE.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Serializes peak measurements across tests in this binary.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` and returns the peak heap bytes live during the call.
fn measured_peak<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let _guard = MEASURE_LOCK.lock().unwrap();
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    let out = f();
    (PEAK.load(Ordering::Relaxed), out)
}

/// Eight genuinely hot lines buried in an endless cold tail.
const HOT: [u64; 8] = [
    0x1000, 0x1040, 0x1080, 0x10c0, 0x2000, 0x2040, 0x8000, 0xff00,
];

/// Feeds `events` synthetic coherence events: every 4th event hits a
/// hot line, the rest land on a never-repeating cold tail (the
/// adversarial shape for a top-K sketch — maximal churn, minimal
/// reuse). Returns the number of events that went to hot lines.
fn feed(c: &mut AttrCollector, events: u64) -> u64 {
    let mut cold: u64 = 0x4000_0000;
    let mut hot_events = 0;
    for i in 0..events {
        let (line, kind) = if i % 4 == 0 {
            hot_events += 1;
            (HOT[(i / 4) as usize % HOT.len()], AttrKind::Invalidation)
        } else {
            cold += 64;
            (cold, AttrKind::CoherenceMiss)
        };
        c.record(kind, line, (i % 3) as u32, ((i + 1) % 3) as u32);
    }
    hot_events
}

/// Checks the sketch kept every hot line, undercounting by at most its
/// self-reported error bound.
fn assert_hot_lines_survive(c: &AttrCollector, events: u64, hot_events: u64) {
    assert!(c.is_sketch(), "the cold tail must force sketch mode");
    assert_eq!(c.total_events(), events);
    let per_hot = hot_events / HOT.len() as u64;
    assert!(
        c.error_bound() < per_hot,
        "error bound {} must stay below the true hot count {per_hot}",
        c.error_bound()
    );
    let top = c.top_addresses(HOT.len());
    for &line in &HOT {
        let tracked = top
            .iter()
            .find(|(l, _, _)| *l == line)
            .unwrap_or_else(|| panic!("hot line {line:#x} evicted from the sketch"));
        // Misra–Gries guarantee: true(a) − tracked(a) ≤ error_bound.
        assert!(
            tracked.1 + c.error_bound() + 1 >= per_hot,
            "line {line:#x}: tracked {} + bound {} below true ~{per_hot}",
            tracked.1,
            c.error_bound()
        );
    }
}

/// Small-scale, always-run: 1.5M events through a 64-counter sketch
/// stay under a 4 MiB peak-heap cap — the exact table for the same
/// stream would hold ~1.1M addresses (tens of MB).
#[test]
fn sketch_collector_stays_bounded_on_streamed_events() {
    const EVENTS: u64 = 1_500_000;
    let mut c = AttrCollector::new(AttributionConfig::new(1024, 64));
    let (peak, hot_events) = measured_peak(|| feed(&mut c, EVENTS));
    const CAP: usize = 4 << 20;
    assert!(peak < CAP, "peak {peak} bytes exceeds the {CAP}-byte cap");
    assert!(c.tracked_addresses() <= 64 + 1);
    assert_hot_lines_survive(&c, EVENTS, hot_events);

    // The bounded collector still renders and round-trips a report.
    let body = c.report_json("wi", 3, 16);
    let doc = placesim_obs::attribution::parse(&body).expect("report validates");
    assert_eq!(doc.mode, "sketch");
    assert_eq!(doc.events(), EVENTS);
}

/// Release-mode headline: a ≥100M-event stream (the event volume of a
/// paper-scale multi-hundred-million-reference run) through the same
/// 64-counter sketch inside a fixed 4 MiB budget. `PLACESIM_SCALE`
/// scales the volume down so CI can smoke the path.
#[test]
#[ignore = "release-scale: run with --release -- --ignored"]
fn hundred_million_events_sketch_within_fixed_budget() {
    let mult = placesim::scale_from_env(1.0);
    let events = (100_000_000.0 * mult) as u64;
    let mut c = AttrCollector::new(AttributionConfig::new(1024, 64));
    let (peak, hot_events) = measured_peak(|| feed(&mut c, events));
    const CAP: usize = 4 << 20;
    assert!(
        peak < CAP,
        "peak {peak} bytes exceeds the fixed {CAP}-byte budget"
    );
    assert_hot_lines_survive(&c, events, hot_events);
}

/// Paper-scale agreement: on a real gauss run, every address the exact
/// table ranks in its top 10 must be tracked by the sketch with a
/// count within the sketch's error bound. Needs the `obs` feature (the
/// engine records no events without it); scaled by `PLACESIM_SCALE`.
#[test]
#[ignore = "release-scale: run with --release -- --ignored"]
fn paper_scale_sketch_topk_agrees_with_exact() {
    if !placesim_machine::attribution_enabled() {
        eprintln!("attribution hooks compiled out; rebuild with --features obs");
        return;
    }
    let mult = placesim::scale_from_env(1.0);
    let spec = placesim_workloads::spec("gauss").expect("known app");
    let opts = placesim_workloads::GenOptions {
        scale: 0.1 * mult,
        seed: 1994,
    };
    let app = placesim::PreparedApp::prepare(&spec, &opts);
    let exact_cfg = AttributionConfig::new(usize::MAX >> 1, 1024);
    let (_, exact) = placesim::run_placement_attributed(
        &app,
        placesim_placement::PlacementAlgorithm::LoadBal,
        16,
        exact_cfg,
    )
    .expect("exact run");
    assert!(!exact.is_sketch(), "exact table must not convert");
    let (_, sketch) = placesim::run_placement_attributed(
        &app,
        placesim_placement::PlacementAlgorithm::LoadBal,
        16,
        AttributionConfig::new(1, 256),
    )
    .expect("sketch run");
    assert!(sketch.is_sketch());
    assert_eq!(sketch.total_events(), exact.total_events());

    let top = exact.top_addresses(10);
    let tracked = sketch.top_addresses(sketch.tracked_addresses());
    for &(line, count, _) in &top {
        if count <= sketch.error_bound() {
            continue; // below the sketch's resolution: no guarantee
        }
        let got = tracked
            .iter()
            .find(|(l, _, _)| *l == line)
            .unwrap_or_else(|| panic!("exact top-10 line {line:#x} missing from sketch"));
        assert!(
            got.1 <= count && got.1 + sketch.error_bound() >= count,
            "line {line:#x}: sketch {} vs exact {count} (bound {})",
            got.1,
            sketch.error_bound()
        );
    }
}
