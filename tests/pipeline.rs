//! End-to-end pipeline tests: workload generation → static analysis →
//! placement → simulation, across crates.

use placesim_repro::prelude::*;

fn opts() -> GenOptions {
    GenOptions {
        scale: 0.003,
        seed: 2024,
    }
}

#[test]
fn every_app_runs_every_algorithm_end_to_end() {
    for app_spec in suite() {
        let mut app = PreparedApp::prepare(&app_spec, &opts());
        // Skip probe for the 127-thread app to keep this test fast; the
        // static algorithms don't need it.
        let algos: Vec<PlacementAlgorithm> = PlacementAlgorithm::STATIC.to_vec();
        let p = 4.min(app.threads());
        for algo in algos {
            let r = placesim::run_placement(&app, algo, p)
                .unwrap_or_else(|e| panic!("{} {algo}: {e}", app_spec.name));
            assert_eq!(
                r.stats.total_refs(),
                app.prog.total_refs(),
                "{} {algo}: reference conservation",
                app_spec.name
            );
            assert!(r.execution_time() > 0);
        }
        // One dynamic-probe-driven placement per app (cheap at this scale).
        app.run_probe().expect("probe");
        let r = placesim::run_placement(&app, PlacementAlgorithm::CoherenceTraffic, p)
            .expect("coherence placement");
        assert!(r.execution_time() > 0);
    }
}

#[test]
fn trace_io_roundtrip_preserves_analysis() {
    use placesim_repro::analysis::SharingAnalysis;
    use placesim_repro::trace::io;

    let spec = spec("pverify").unwrap();
    let prog = generate(&spec, &opts());
    let bytes = io::to_bytes(&prog).expect("serialize");
    let back = io::from_bytes(&bytes).expect("deserialize");
    assert_eq!(back, prog);

    let a = SharingAnalysis::measure(&prog);
    let b = SharingAnalysis::measure(&back);
    assert_eq!(
        a, b,
        "analysis must be identical on the round-tripped trace"
    );
}

#[test]
fn prepared_app_from_trace_matches_prepare() {
    let spec = spec("patch").unwrap();
    let prog = generate(&spec, &opts());
    let via_trace = PreparedApp::from_trace(&spec, prog, &opts());
    let via_prepare = PreparedApp::prepare(&spec, &opts());
    assert_eq!(via_trace.prog, via_prepare.prog);
    assert_eq!(via_trace.lengths, via_prepare.lengths);
}

#[test]
fn simulation_is_deterministic_across_sweeps() {
    let app = PreparedApp::prepare(&spec("grav").unwrap(), &opts());
    let algos = [PlacementAlgorithm::LoadBal, PlacementAlgorithm::ShareRefs];
    let a = placesim::run_sweep(&app, &algos, &[2, 4]).unwrap();
    let b = placesim::run_sweep(&app, &algos, &[2, 4]).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.stats, y.stats);
        assert_eq!(x.map, y.map);
    }
}

#[test]
fn context_count_follows_placement() {
    // The machine sizes hardware contexts from the placement map: with
    // p processors and t threads the largest cluster is ⌈t/p⌉ for every
    // thread-balanced algorithm.
    let app = PreparedApp::prepare(&spec("water").unwrap(), &opts());
    for p in [2usize, 4, 8] {
        let r = placesim::run_placement(&app, PlacementAlgorithm::Random, p).unwrap();
        assert_eq!(r.map.max_cluster_size(), app.threads().div_ceil(p));
    }
}
