//! Compressed trace serialization (format version 2).
//!
//! The flat format of [`crate::io`] spends 8 bytes per reference.
//! Real traces are highly compressible: instruction fetches advance by
//! 4 bytes, data accesses come in runs at one address, and deltas
//! between successive addresses are tiny. Version 2 encodes each record
//! as a single LEB128 varint holding
//!
//! ```text
//! zigzag(addr − prev_addr) << 2 | kind_tag
//! ```
//!
//! with `prev_addr` tracked per thread. Sequential code and run-heavy
//! data shrink to 1–2 bytes per reference (4–8× smaller than v1).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), placesim_trace::TraceError> {
//! use placesim_trace::{compress, io, Address, MemRef, ProgramTrace, ThreadTrace};
//!
//! let t: ThreadTrace = (0..100).map(|i| MemRef::instr(Address::new(4 * i))).collect();
//! let prog = ProgramTrace::new("small", vec![t]);
//!
//! let v2 = compress::to_bytes(&prog)?;
//! let v1 = io::to_bytes(&prog)?;
//! assert!(v2.len() * 3 < v1.len()); // sequential code compresses well
//! assert_eq!(compress::from_bytes(&v2)?, prog);
//! # Ok(())
//! # }
//! ```

use crate::record::{Address, MemRef};
use crate::{ProgramTrace, ThreadTrace, TraceError};
use bytes::Bytes;
use std::io::{Read, Write};

/// File magic, shared with v1.
pub const MAGIC: [u8; 4] = *b"PSIM";
/// Version tag of the compressed format.
pub const VERSION: u32 = 2;

/// ZigZag-encodes a signed delta into an unsigned value.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a LEB128 varint.
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `buf`.
pub(crate) fn get_varint(buf: &mut &[u8]) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = buf.split_first().ok_or_else(|| TraceError::Format {
            reason: "truncated varint".into(),
        })?;
        *buf = rest;
        if shift >= 64 {
            return Err(TraceError::Format {
                reason: "varint exceeds 64 bits".into(),
            });
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serializes a program trace in the compressed v2 format.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the sink fails.
pub fn write_program<W: Write>(prog: &ProgramTrace, mut w: W) -> Result<(), TraceError> {
    let mut out = Vec::with_capacity(64 + prog.total_refs() as usize * 2);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let name = prog.name().as_bytes();
    put_varint(&mut out, name.len() as u64);
    out.extend_from_slice(name);
    put_varint(&mut out, prog.thread_count() as u64);

    for (_, thread) in prog.iter() {
        put_varint(&mut out, thread.len() as u64);
        let mut prev: i64 = 0;
        for r in thread.iter() {
            let addr = r.addr.raw() as i64;
            let delta = addr - prev;
            prev = addr;
            put_varint(&mut out, zigzag(delta) << 2 | r.kind.to_tag());
        }
    }
    w.write_all(&out)?;
    w.flush()?;
    Ok(())
}

/// Serializes into an owned buffer.
///
/// # Errors
///
/// See [`write_program`].
pub fn to_bytes(prog: &ProgramTrace) -> Result<Bytes, TraceError> {
    let mut buf = Vec::new();
    write_program(prog, &mut buf)?;
    Ok(Bytes::from(buf))
}

/// Deserializes a compressed v2 program trace.
///
/// # Errors
///
/// Returns [`TraceError::Format`] on malformed input,
/// [`TraceError::Version`] on a version mismatch.
pub fn from_bytes(raw: &[u8]) -> Result<ProgramTrace, TraceError> {
    let mut buf = raw;
    if buf.len() < 8 {
        return Err(TraceError::Format {
            reason: "truncated header".into(),
        });
    }
    let (magic, rest) = buf.split_at(4);
    if magic != MAGIC {
        return Err(TraceError::Format {
            reason: format!("bad magic {magic:?}"),
        });
    }
    let (ver, rest) = rest.split_at(4);
    let version = u32::from_le_bytes(ver.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(TraceError::Version {
            found: version,
            supported: VERSION,
        });
    }
    buf = rest;

    let name_len = get_varint(&mut buf)? as usize;
    if buf.len() < name_len {
        return Err(TraceError::Format {
            reason: "truncated name".into(),
        });
    }
    let (name_bytes, rest) = buf.split_at(name_len);
    let name = std::str::from_utf8(name_bytes)
        .map_err(|_| TraceError::Format {
            reason: "name is not UTF-8".into(),
        })?
        .to_owned();
    buf = rest;

    let thread_count = get_varint(&mut buf)? as usize;
    // Both counts are attacker-controlled. Bound every pre-allocation by
    // what the remaining input could actually encode — each thread costs
    // at least its length varint, each reference at least one byte — so
    // a hostile header can never reserve more than ~the input size; an
    // honest count above the cap merely grows the vec amortized.
    let mut threads = Vec::with_capacity(thread_count.min(buf.len() / 8));
    for _ in 0..thread_count {
        let len = get_varint(&mut buf)? as usize;
        let mut trace = ThreadTrace::with_capacity(len.min(buf.len() / 8));
        let mut prev: i64 = 0;
        for _ in 0..len {
            let word = get_varint(&mut buf)?;
            let kind = crate::record::RefKind::from_tag(word & 3).expect("2-bit tag");
            let delta = unzigzag(word >> 2);
            let addr = prev.checked_add(delta).ok_or_else(|| TraceError::Format {
                reason: "address delta overflows".into(),
            })?;
            if addr < 0 || addr > Address::MAX.raw() as i64 {
                return Err(TraceError::Format {
                    reason: format!("decoded address {addr} out of range"),
                });
            }
            prev = addr;
            trace.push(MemRef::new(kind, Address::new(addr as u64)));
        }
        threads.push(trace);
    }
    if !buf.is_empty() {
        return Err(TraceError::Format {
            reason: format!("{} trailing bytes", buf.len()),
        });
    }
    Ok(ProgramTrace::new(name, threads))
}

/// Deserializes from any reader.
///
/// # Errors
///
/// See [`from_bytes`].
pub fn read_program<R: Read>(mut r: R) -> Result<ProgramTrace, TraceError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    from_bytes(&raw)
}

/// Reads a trace in any supported format, dispatching on the version field.
///
/// # Errors
///
/// Propagates the underlying decoder's errors.
pub fn read_any(raw: &[u8]) -> Result<ProgramTrace, TraceError> {
    if raw.len() >= 8 && raw[..4] == MAGIC {
        let version = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
        match version {
            1 => return crate::io::from_bytes(raw),
            2 => return from_bytes(raw),
            3 => return crate::stream::from_bytes(raw),
            other => {
                return Err(TraceError::Version {
                    found: other,
                    supported: crate::stream::VERSION,
                })
            }
        }
    }
    Err(TraceError::Format {
        reason: "not a placesim trace file".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io;

    fn sample() -> ProgramTrace {
        let mut t0 = ThreadTrace::new();
        for i in 0..500u64 {
            t0.push(MemRef::instr(Address::new(4 * i)));
            if i % 3 == 0 {
                t0.push(MemRef::read(Address::new(0x4000_0000 + 32 * (i % 50))));
            }
            if i % 7 == 0 {
                t0.push(MemRef::write(Address::new(0x8000_0000 + 32 * (i % 20))));
            }
        }
        t0.push(MemRef::barrier(0));
        let t1: ThreadTrace = (0..100u64)
            .map(|i| MemRef::read(Address::new(0x4000_0000 + 32 * (i % 5))))
            .collect();
        ProgramTrace::new("compress-me", vec![t0, t1])
    }

    #[test]
    fn roundtrip() {
        let prog = sample();
        let bytes = to_bytes(&prog).unwrap();
        assert_eq!(from_bytes(&bytes).unwrap(), prog);
    }

    #[test]
    fn compresses_well() {
        let prog = sample();
        let v1 = io::to_bytes(&prog).unwrap();
        let v2 = to_bytes(&prog).unwrap();
        assert!(
            v2.len() * 2 < v1.len(),
            "v2 {} should be well under half of v1 {}",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 4, -4, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn rejects_corruption() {
        let bytes = to_bytes(&sample()).unwrap();
        // Truncations at various places must error, never panic.
        for cut in [0, 3, 7, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage.
        let mut noisy = bytes.to_vec();
        noisy.push(0);
        assert!(from_bytes(&noisy).is_err());
        // Wrong version.
        let mut wrong = bytes.to_vec();
        wrong[4] = 7;
        assert!(matches!(
            from_bytes(&wrong),
            Err(TraceError::Version { found: 7, .. })
        ));
    }

    #[test]
    fn read_any_dispatches_both_formats() {
        let prog = sample();
        let v1 = io::to_bytes(&prog).unwrap();
        let v2 = to_bytes(&prog).unwrap();
        assert_eq!(read_any(&v1).unwrap(), prog);
        assert_eq!(read_any(&v2).unwrap(), prog);
        assert!(read_any(b"garbage").is_err());
    }

    #[test]
    fn empty_program() {
        let prog = ProgramTrace::new("", vec![]);
        let bytes = to_bytes(&prog).unwrap();
        assert_eq!(from_bytes(&bytes).unwrap(), prog);
    }

    /// Empty threads at every boundary position, and a named zero-thread
    /// program: v2 writes a zero length varint per empty thread, and the
    /// reader restores the exact thread list — mirrored by the v1 and v3
    /// equivalents so all formats agree on these edge shapes.
    #[test]
    fn empty_threads_roundtrip_at_boundaries() {
        let empty = ThreadTrace::new();
        let busy: ThreadTrace = (0..10u64)
            .map(|i| MemRef::read(Address::new(0x100 + 8 * i)))
            .collect();
        for threads in [
            vec![empty.clone()],
            vec![empty.clone(), busy.clone()],
            vec![busy.clone(), empty.clone()],
            vec![empty.clone(), busy.clone(), empty.clone()],
        ] {
            let prog = ProgramTrace::new("holes", threads);
            let bytes = to_bytes(&prog).unwrap();
            assert_eq!(from_bytes(&bytes).unwrap(), prog);
            // read_any takes the same path.
            assert_eq!(read_any(&bytes).unwrap(), prog);
        }
        let named_zero = ProgramTrace::new("nothing", vec![]);
        let bytes = to_bytes(&named_zero).unwrap();
        assert_eq!(from_bytes(&bytes).unwrap(), named_zero);
    }
}
