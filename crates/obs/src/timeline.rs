//! Cycle-level event timeline tracing.
//!
//! A [`EventTrace`] is a bounded ring buffer of typed, cycle-stamped
//! [`TimelineEvent`]s recorded by an instrumented simulation run. The
//! buffer is allocated once at construction and never grows: recording
//! in steady state is a store plus two counter bumps, and when the ring
//! is full the oldest events are overwritten (the per-kind counters keep
//! counting, so totals stay exact even after drops).
//!
//! The trace exports to the Chrome trace-event JSON format
//! ([`EventTrace::to_chrome_json`]), loadable in `chrome://tracing` and
//! Perfetto, and supports per-line *sequential-sharing run* extraction
//! ([`EventTrace::sharing_runs`]): maximal tenures of a single thread
//! over a shared cache line, the paper's §5 "sharing is sequential"
//! claim made directly measurable.
//!
//! Timestamps are simulation cycles. The Chrome export maps one cycle to
//! one microsecond of trace time (the format's native unit), which only
//! affects the axis label, not the shape.

use crate::json::JsonWriter;
use crate::Histogram;
use std::collections::HashMap;

/// Number of event kinds (length of [`EventKind::ALL`]).
pub const EVENT_KINDS: usize = 9;

/// Marker for "no thread" in [`TimelineEvent::thread`].
pub const NO_THREAD: u32 = u32::MAX;

/// The typed events an instrumented engine emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A processor ran one context for a stretch of consecutive cache
    /// hits. `dur` spans the slice; `detail` = hits completed.
    RunSlice,
    /// A miss-induced context switch (pipeline drain). `dur` = `detail`
    /// = drained stall cycles.
    ContextSwitch,
    /// A cache miss was issued. `line` = missing line, `detail` = miss
    /// kind index (0 compulsory, 1 intra-thread conflict, 2 inter-thread
    /// conflict, 3 invalidation).
    MissIssue,
    /// The fill for a miss completes and its context becomes ready.
    /// `cycle` is the (future) readiness cycle; `line` = filled line.
    MissFill,
    /// This processor's write transaction invalidated a remote cache.
    /// `detail` = victim processor.
    InvalidationSend,
    /// A remote write invalidated a line in this processor's cache.
    /// `detail` = sending processor.
    InvalidationReceive,
    /// A directory transaction (read or write fill / upgrade).
    /// `detail` = `(fanout << 1) | is_write`.
    DirectoryTransition,
    /// This processor's Dragon write pushed an update to a remote
    /// sharer. `detail` = receiving processor.
    UpdateSend,
    /// A remote Dragon write updated a line resident in this
    /// processor's cache. `detail` = sending processor.
    UpdateReceive,
}

impl EventKind {
    /// All kinds, in declaration order (used to index count arrays).
    pub const ALL: [EventKind; EVENT_KINDS] = [
        EventKind::RunSlice,
        EventKind::ContextSwitch,
        EventKind::MissIssue,
        EventKind::MissFill,
        EventKind::InvalidationSend,
        EventKind::InvalidationReceive,
        EventKind::DirectoryTransition,
        EventKind::UpdateSend,
        EventKind::UpdateReceive,
    ];

    /// Dense index of this kind (position in [`EventKind::ALL`]).
    pub fn index(self) -> usize {
        match self {
            EventKind::RunSlice => 0,
            EventKind::ContextSwitch => 1,
            EventKind::MissIssue => 2,
            EventKind::MissFill => 3,
            EventKind::InvalidationSend => 4,
            EventKind::InvalidationReceive => 5,
            EventKind::DirectoryTransition => 6,
            EventKind::UpdateSend => 7,
            EventKind::UpdateReceive => 8,
        }
    }

    /// Short label used as the Chrome event name.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::RunSlice => "run",
            EventKind::ContextSwitch => "switch",
            EventKind::MissIssue => "miss",
            EventKind::MissFill => "fill",
            EventKind::InvalidationSend => "inv-send",
            EventKind::InvalidationReceive => "inv-recv",
            EventKind::DirectoryTransition => "dir",
            EventKind::UpdateSend => "upd-send",
            EventKind::UpdateReceive => "upd-recv",
        }
    }

    /// `true` for kinds exported as Chrome duration (`"X"`) events;
    /// instant (`"i"`) events otherwise.
    pub fn is_span(self) -> bool {
        matches!(self, EventKind::RunSlice | EventKind::ContextSwitch)
    }
}

/// One recorded event. `Copy` and fixed-size so the ring buffer never
/// allocates while recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Cycle the event happened (start cycle for span kinds).
    pub cycle: u64,
    /// Duration in cycles for span kinds, 0 for instants.
    pub dur: u64,
    /// Processor the event belongs to.
    pub processor: u32,
    /// Thread involved, or [`NO_THREAD`].
    pub thread: u32,
    /// What happened.
    pub kind: EventKind,
    /// Cache line involved, or `u64::MAX` when not applicable.
    pub line: u64,
    /// Kind-specific payload; see the [`EventKind`] variant docs.
    pub detail: u64,
}

/// One maximal single-thread tenure over a shared cache line, extracted
/// from the directory-transition events of a timeline.
///
/// A run starts at the thread's first directory transaction on the line
/// and ends when a *different* thread transacts on it (or at the last
/// observed transaction, for the final run). Long runs mean sharing is
/// sequential — threads finish with shared data before others touch it —
/// which is the paper's §5 explanation for why placement barely moves
/// miss counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingRun {
    /// The shared cache line.
    pub line: u64,
    /// The tenant thread.
    pub thread: u32,
    /// Processor the thread ran on at the start of the run.
    pub processor: u32,
    /// Cycle of the thread's first transaction on the line.
    pub start_cycle: u64,
    /// Cycle the tenure ended (next thread's transaction, or the last
    /// transaction observed).
    pub end_cycle: u64,
    /// Directory transactions by the tenant during the run.
    pub transactions: u64,
}

impl SharingRun {
    /// Tenure length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// A bounded, allocation-free-in-steady-state ring buffer of timeline
/// events plus exact per-kind counters.
///
/// The counters ([`EventTrace::count`], [`EventTrace::total_recorded`])
/// track every event ever recorded; the ring retains only the most
/// recent `capacity` of them, so the counters are what downstream
/// reconciliation (against `SimStats` and the invariant auditor) checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTrace {
    buf: Vec<TimelineEvent>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    total: u64,
    counts: [u64; EVENT_KINDS],
    capacity: usize,
}

impl EventTrace {
    /// Creates a trace retaining at most `capacity` events (clamped to
    /// at least 1). The buffer is reserved up front; recording never
    /// allocates afterwards.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventTrace {
            buf: Vec::with_capacity(capacity),
            next: 0,
            total: 0,
            counts: [0; EVENT_KINDS],
            capacity,
        }
    }

    /// Records one event, overwriting the oldest once full.
    #[inline]
    pub fn record(&mut self, ev: TimelineEvent) {
        self.counts[ev.kind.index()] += 1;
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded (or retained).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to ring overwrites.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Exact count of events of `kind` ever recorded (drop-proof).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Retained events in recording order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &TimelineEvent> {
        let (tail, head) = self.buf.split_at(self.next.min(self.buf.len()));
        head.iter().chain(tail.iter())
    }

    /// Extracts the sequential-sharing runs from the retained
    /// [`EventKind::DirectoryTransition`] events (see [`SharingRun`]).
    /// Only lines transacted on by two or more distinct threads — i.e.
    /// actually shared — produce runs. Returns runs ordered by start
    /// cycle. If the ring overwrote events, extraction covers the
    /// retained window only.
    pub fn sharing_runs(&self) -> Vec<SharingRun> {
        // First pass: which lines are shared (≥ 2 distinct threads)?
        let mut first_thread: HashMap<u64, u32> = HashMap::new();
        let mut shared: HashMap<u64, bool> = HashMap::new();
        for ev in self.iter() {
            if ev.kind != EventKind::DirectoryTransition {
                continue;
            }
            match first_thread.get(&ev.line) {
                None => {
                    first_thread.insert(ev.line, ev.thread);
                }
                Some(&t) if t != ev.thread => {
                    shared.insert(ev.line, true);
                }
                Some(_) => {}
            }
        }
        // Second pass: split each shared line's transaction stream into
        // maximal same-thread runs.
        let mut open: HashMap<u64, SharingRun> = HashMap::new();
        let mut out: Vec<SharingRun> = Vec::new();
        for ev in self.iter() {
            if ev.kind != EventKind::DirectoryTransition || !shared.contains_key(&ev.line) {
                continue;
            }
            match open.get_mut(&ev.line) {
                Some(run) if run.thread == ev.thread => {
                    run.end_cycle = ev.cycle;
                    run.transactions += 1;
                }
                other => {
                    if let Some(mut prev) = other.map(|r| *r) {
                        // The tenure ends when the next thread arrives.
                        prev.end_cycle = ev.cycle;
                        out.push(prev);
                    }
                    open.insert(
                        ev.line,
                        SharingRun {
                            line: ev.line,
                            thread: ev.thread,
                            processor: ev.processor,
                            start_cycle: ev.cycle,
                            end_cycle: ev.cycle,
                            transactions: 1,
                        },
                    );
                }
            }
        }
        out.extend(open.into_values());
        out.sort_by_key(|r| (r.start_cycle, r.line, r.thread));
        out
    }

    /// Histogram of sharing-run tenure lengths in cycles.
    pub fn sharing_run_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for run in self.sharing_runs() {
            h.record(run.cycles());
        }
        h
    }

    /// Writes the trace as a complete Chrome trace-event JSON document
    /// onto `w`: a `traceEvents` array (metadata + one entry per
    /// retained event) plus an `otherData` block carrying the schema
    /// tag, totals and drop count. Loadable in `chrome://tracing` and
    /// Perfetto; span kinds become `"X"` duration events, the rest
    /// thread-scoped `"i"` instants.
    pub fn write_chrome_json(&self, w: &mut JsonWriter) {
        let procs: u64 = self
            .iter()
            .map(|e| u64::from(e.processor) + 1)
            .max()
            .unwrap_or(0);
        w.begin_object();
        w.key("traceEvents");
        w.begin_array();
        // Metadata: one trace-viewer "thread" per simulated processor.
        w.begin_object();
        w.field_str("name", "process_name");
        w.field_str("ph", "M");
        w.field_u64("pid", 1);
        w.key("args");
        w.begin_object();
        w.field_str("name", "placesim");
        w.end_object();
        w.end_object();
        for p in 0..procs {
            w.begin_object();
            w.field_str("name", "thread_name");
            w.field_str("ph", "M");
            w.field_u64("pid", 1);
            w.field_u64("tid", p);
            w.key("args");
            w.begin_object();
            w.field_str("name", &format!("P{p}"));
            w.end_object();
            w.end_object();
        }
        for ev in self.iter() {
            w.begin_object();
            w.field_str("name", ev.kind.label());
            w.field_u64("pid", 1);
            w.field_u64("tid", u64::from(ev.processor));
            w.field_u64("ts", ev.cycle);
            if ev.kind.is_span() {
                w.field_str("ph", "X");
                w.field_u64("dur", ev.dur);
            } else {
                w.field_str("ph", "i");
                w.field_str("s", "t");
            }
            w.key("args");
            w.begin_object();
            if ev.thread != NO_THREAD {
                w.field_u64("thread", u64::from(ev.thread));
            }
            if ev.line != u64::MAX {
                w.field_str("line", &format!("{:#x}", ev.line));
            }
            w.field_u64("detail", ev.detail);
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.key("otherData");
        w.begin_object();
        w.field_str("schema", "placesim-timeline-v1");
        w.field_str("time_unit", "cycles (1 cycle = 1 us of trace time)");
        w.field_u64("total_recorded", self.total);
        w.field_u64("retained", self.buf.len() as u64);
        w.field_u64("dropped", self.dropped());
        w.key("counts");
        w.begin_object();
        for kind in EventKind::ALL {
            w.field_u64(kind.label(), self.count(kind));
        }
        w.end_object();
        w.end_object();
        w.end_object();
    }

    /// The trace as a standalone Chrome trace-event JSON document.
    pub fn to_chrome_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_chrome_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(kind: EventKind, cycle: u64, thread: u32, line: u64) -> TimelineEvent {
        TimelineEvent {
            cycle,
            dur: 0,
            processor: 0,
            thread,
            kind,
            line,
            detail: 0,
        }
    }

    #[test]
    fn kind_indices_are_dense() {
        for (i, kind) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn ring_bounds_retention_but_not_counts() {
        let mut t = EventTrace::new(4);
        for i in 0..10 {
            t.record(ev(EventKind::MissIssue, i, 0, 0x40));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.capacity(), 4);
        assert_eq!(t.total_recorded(), 10);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.count(EventKind::MissIssue), 10);
        // Retained events are the newest four, oldest first.
        let cycles: Vec<u64> = t.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn iter_before_wrap_is_in_order() {
        let mut t = EventTrace::new(8);
        for i in 0..3 {
            t.record(ev(EventKind::RunSlice, i, 0, u64::MAX));
        }
        let cycles: Vec<u64> = t.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut t = EventTrace::new(0);
        t.record(ev(EventKind::MissFill, 1, 0, 0));
        assert_eq!(t.capacity(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sharing_runs_split_on_thread_change() {
        let mut t = EventTrace::new(64);
        // Line 0x40: T0 transacts at 0, 10, 20; T1 takes over at 30 and
        // transacts again at 35; T0 returns at 50.
        for (cycle, thread) in [(0, 0), (10, 0), (20, 0), (30, 1), (35, 1), (50, 0)] {
            t.record(ev(EventKind::DirectoryTransition, cycle, thread, 0x40));
        }
        // Line 0x80 is private to T2: no runs.
        t.record(ev(EventKind::DirectoryTransition, 5, 2, 0x80));
        let runs = t.sharing_runs();
        assert_eq!(runs.len(), 3);
        assert_eq!(
            (runs[0].thread, runs[0].start_cycle, runs[0].end_cycle),
            (0, 0, 30)
        );
        assert_eq!(runs[0].transactions, 3);
        assert_eq!(runs[0].cycles(), 30);
        assert_eq!(
            (runs[1].thread, runs[1].start_cycle, runs[1].end_cycle),
            (1, 30, 50)
        );
        assert_eq!(runs[1].transactions, 2);
        // Final run closes at its last observed transaction.
        assert_eq!(
            (runs[2].thread, runs[2].start_cycle, runs[2].end_cycle),
            (0, 50, 50)
        );
        assert!(runs.iter().all(|r| r.line == 0x40));
    }

    #[test]
    fn sharing_run_histogram_counts_runs() {
        let mut t = EventTrace::new(64);
        for (cycle, thread) in [(0, 0), (100, 1)] {
            t.record(ev(EventKind::DirectoryTransition, cycle, thread, 0x40));
        }
        let h = t.sharing_run_histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn chrome_json_is_balanced_and_tagged() {
        let mut t = EventTrace::new(16);
        t.record(TimelineEvent {
            cycle: 3,
            dur: 7,
            processor: 1,
            thread: 2,
            kind: EventKind::RunSlice,
            line: u64::MAX,
            detail: 6,
        });
        t.record(ev(EventKind::InvalidationSend, 11, 0, 0x1c0));
        let s = t.to_chrome_json();
        assert!(json::balanced(&s), "unbalanced: {s}");
        json::require_keys(&s, &["traceEvents", "otherData", "schema", "dropped"]).unwrap();
        assert!(s.contains("\"ph\": \"X\""));
        assert!(s.contains("\"ph\": \"i\""));
        assert!(s.contains("\"ph\": \"M\""));
        assert!(s.contains("placesim-timeline-v1"));
        assert!(s.contains("\"line\": \"0x1c0\""));
        // Parses with the strict parser too.
        json::parse(&s).unwrap();
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = EventTrace::new(4);
        let s = t.to_chrome_json();
        assert!(json::balanced(&s));
        assert!(s.contains("\"total_recorded\": 0"));
    }
}
