//! Cluster partitions, the thread-balance constraint, and incrementally
//! maintained cluster aggregates.

use placesim_analysis::SymMatrix;
use serde::{Deserialize, Serialize};

/// The thread-balance shape for `t` threads on `p` processors: final
/// cluster sizes must be ⌊t/p⌋ or ⌈t/p⌉, with exactly `t mod p` clusters
/// of the larger size (paper §2: "each cluster must have t/p threads if p
/// divides evenly into t; otherwise some processors will have ⌊t/p⌋
/// threads and others ⌈t/p⌉").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BalanceSpec {
    threads: usize,
    processors: usize,
}

impl BalanceSpec {
    /// Creates the spec. `processors` may not exceed `threads` (callers
    /// validate; this type only describes the shape).
    pub fn new(threads: usize, processors: usize) -> Self {
        BalanceSpec {
            threads,
            processors,
        }
    }

    /// ⌊t/p⌋.
    pub fn floor_size(&self) -> usize {
        self.threads / self.processors.max(1)
    }

    /// ⌈t/p⌉ — also the maximum legal cluster size.
    pub fn ceil_size(&self) -> usize {
        self.threads.div_ceil(self.processors.max(1))
    }

    /// Number of clusters that must have the ⌈t/p⌉ size (0 when `p | t`).
    pub fn big_clusters(&self) -> usize {
        if self.floor_size() == self.ceil_size() {
            0
        } else {
            self.threads % self.processors
        }
    }

    /// Target processor count.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Whether a combine producing `new_size`, in a partition currently
    /// holding `big_count` clusters of the ceiling size, keeps a balanced
    /// completion possible.
    ///
    /// Necessary conditions: the new cluster fits under the ceiling, and
    /// — when sizes are uneven — the count of ceiling-sized clusters never
    /// exceeds `t mod p`. (Sufficiency is restored by the engine's
    /// backtracking.)
    pub fn combine_allowed(&self, new_size: usize, big_count_after: usize) -> bool {
        let ceil = self.ceil_size();
        if new_size > ceil {
            return false;
        }
        if self.floor_size() != ceil && new_size == ceil && big_count_after > self.big_clusters() {
            return false;
        }
        true
    }
}

/// Handle to a cluster-pair cross-sum cache registered on a
/// [`Partition`] via [`Partition::register_cross`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossId(usize);

/// Handle to a per-cluster sum cache registered on a [`Partition`] via
/// [`Partition::register_sum`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SumId(usize);

/// Per-cluster-pair cross-sums of one thread matrix, stored as a strict
/// lower triangle (`tri[i][j]` with `j < i`) so row/column deletion on
/// combine is a pair of `Vec::remove`s.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CrossCache {
    tri: Vec<Vec<u64>>,
}

/// Per-cluster sums of one per-thread weight vector.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SumCache {
    vals: Vec<u64>,
}

fn tri_get(tri: &[Vec<u64>], a: usize, b: usize) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    tri[hi][lo]
}

fn tri_get_mut(tri: &mut [Vec<u64>], a: usize, b: usize) -> &mut u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    &mut tri[hi][lo]
}

/// A working partition of threads into clusters during cluster combining.
///
/// Clusters are lists of thread indices. Combining removes the
/// higher-indexed cluster and appends its members to the lower-indexed
/// one, so an undo log of `(kept, merged_members)` supports the engine's
/// backtracking.
///
/// # Cached aggregates
///
/// Callers may register *aggregate caches* — cluster-pair cross-sums of
/// a thread matrix ([`register_cross`](Self::register_cross)) or
/// per-cluster sums of a weight vector
/// ([`register_sum`](Self::register_sum)). The caches are maintained
/// exactly through [`combine`](Self::combine) / [`undo`](Self::undo) by
/// row folding: `cross(a ∪ b, c) = cross(a, c) + cross(b, c)`, an exact
/// `u64` identity, so a cached lookup always equals the freshly computed
/// sum. This turns the engine's per-pair metric evaluation from
/// O(|A|·|B|) matrix walks into O(1) lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    clusters: Vec<Vec<usize>>,
    cross: Vec<CrossCache>,
    sums: Vec<SumCache>,
}

impl Partition {
    /// The initial partition: each of `t` threads in its own cluster.
    pub fn singletons(t: usize) -> Self {
        Partition {
            clusters: (0..t).map(|i| vec![i]).collect(),
            cross: Vec::new(),
            sums: Vec::new(),
        }
    }

    /// Builds a partition from explicit clusters (used in tests).
    pub fn from_clusters(clusters: Vec<Vec<usize>>) -> Self {
        Partition {
            clusters,
            cross: Vec::new(),
            sums: Vec::new(),
        }
    }

    /// Registers a cross-sum cache over the per-thread matrix `m`:
    /// `cross(id, a, b)` then returns `m.cross_sum(cluster a, cluster b)`
    /// in O(1), kept exact through combines and undos.
    ///
    /// # Panics
    ///
    /// Panics if a thread index in the partition is out of range for `m`.
    pub fn register_cross(&mut self, m: &SymMatrix<u64>) -> CrossId {
        let tri = (0..self.clusters.len())
            .map(|i| {
                (0..i)
                    .map(|j| m.cross_sum(&self.clusters[i], &self.clusters[j]))
                    .collect()
            })
            .collect();
        self.cross.push(CrossCache { tri });
        CrossId(self.cross.len() - 1)
    }

    /// Registers a per-cluster sum cache over `per_thread` weights:
    /// `sum(id, c)` then returns the weight total of cluster `c` in O(1).
    ///
    /// # Panics
    ///
    /// Panics if a thread index in the partition is out of range for
    /// `per_thread`.
    pub fn register_sum(&mut self, per_thread: &[u64]) -> SumId {
        let vals = self
            .clusters
            .iter()
            .map(|c| c.iter().map(|&t| per_thread[t]).sum())
            .collect();
        self.sums.push(SumCache { vals });
        SumId(self.sums.len() - 1)
    }

    /// Cached cross-sum between clusters `a` and `b` (0 when `a == b`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cross(&self, id: CrossId, a: usize, b: usize) -> u64 {
        if a == b {
            return 0;
        }
        tri_get(&self.cross[id.0].tri, a, b)
    }

    /// Cached weight sum of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn sum(&self, id: SumId, c: usize) -> u64 {
        self.sums[id.0].vals[c]
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` if there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Members of cluster `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cluster(&self, i: usize) -> &[usize] {
        &self.clusters[i]
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Number of clusters whose size equals `size`.
    pub fn count_of_size(&self, size: usize) -> usize {
        self.clusters.iter().filter(|c| c.len() == size).count()
    }

    /// Combines clusters `a` and `b` (`a != b`), keeping the smaller
    /// index. Returns an undo token for [`Partition::undo`].
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn combine(&mut self, a: usize, b: usize) -> UndoToken {
        assert!(a != b, "cannot combine a cluster with itself");
        let (keep, remove) = if a < b { (a, b) } else { (b, a) };
        let len = self.clusters.len();

        // Fold the removed cluster's aggregates into the kept one, saving
        // the removed row so undo can subtract it back out exactly.
        let mut cross_rows = Vec::with_capacity(self.cross.len());
        for cache in &mut self.cross {
            let mut row = vec![0u64; len];
            for (c, slot) in row.iter_mut().enumerate() {
                if c != remove {
                    *slot = tri_get(&cache.tri, remove, c);
                }
            }
            for (c, &v) in row.iter().enumerate() {
                if c != keep && c != remove {
                    *tri_get_mut(&mut cache.tri, keep, c) += v;
                }
            }
            cache.tri.remove(remove);
            for r in cache.tri.iter_mut().skip(remove) {
                r.remove(remove);
            }
            cross_rows.push(row);
        }
        let mut sum_vals = Vec::with_capacity(self.sums.len());
        for cache in &mut self.sums {
            let removed = cache.vals.remove(remove);
            cache.vals[keep] += removed;
            sum_vals.push(removed);
        }

        let moved = self.clusters.remove(remove);
        let moved_len = moved.len();
        self.clusters[keep].extend(moved);
        UndoToken {
            keep,
            removed_at: remove,
            moved_len,
            cross_rows,
            sum_vals,
        }
    }

    /// Reverts the most recent [`Partition::combine`] described by `token`.
    ///
    /// Tokens must be undone in LIFO order. Registered caches are
    /// restored exactly: the kept cluster's sums shrink by the saved row
    /// (`u64` subtraction of what was added), and the removed cluster's
    /// row is reinserted verbatim.
    pub fn undo(&mut self, token: UndoToken) {
        let keep_cluster = &mut self.clusters[token.keep];
        let split = keep_cluster.len() - token.moved_len;
        let moved: Vec<usize> = keep_cluster.split_off(split);
        self.clusters.insert(token.removed_at, moved);

        let len = self.clusters.len();
        for (cache, row) in self.cross.iter_mut().zip(&token.cross_rows) {
            cache
                .tri
                .insert(token.removed_at, row[..token.removed_at].to_vec());
            for (i, r) in cache.tri.iter_mut().enumerate().skip(token.removed_at + 1) {
                r.insert(token.removed_at, row[i]);
            }
            for (c, &v) in row.iter().enumerate().take(len) {
                if c != token.keep && c != token.removed_at {
                    *tri_get_mut(&mut cache.tri, token.keep, c) -= v;
                }
            }
        }
        for (cache, &val) in self.sums.iter_mut().zip(&token.sum_vals) {
            cache.vals[token.keep] -= val;
            cache.vals.insert(token.removed_at, val);
        }
    }

    /// Consumes the partition, returning its clusters.
    pub fn into_clusters(self) -> Vec<Vec<usize>> {
        self.clusters
    }
}

/// Undo record for one combine step (LIFO). Carries the removed
/// cluster's saved aggregate rows so [`Partition::undo`] restores every
/// registered cache bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoToken {
    keep: usize,
    removed_at: usize,
    moved_len: usize,
    cross_rows: Vec<Vec<u64>>,
    sum_vals: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_spec_even() {
        let s = BalanceSpec::new(8, 4);
        assert_eq!(s.floor_size(), 2);
        assert_eq!(s.ceil_size(), 2);
        assert_eq!(s.big_clusters(), 0);
        assert!(s.combine_allowed(2, 99)); // big count irrelevant when even
        assert!(!s.combine_allowed(3, 0));
    }

    #[test]
    fn balance_spec_uneven() {
        let s = BalanceSpec::new(5, 2);
        assert_eq!(s.floor_size(), 2);
        assert_eq!(s.ceil_size(), 3);
        assert_eq!(s.big_clusters(), 1);
        assert!(s.combine_allowed(3, 1));
        assert!(!s.combine_allowed(3, 2)); // a second ceil-sized cluster
        assert!(!s.combine_allowed(4, 1));
    }

    #[test]
    fn combine_and_undo_roundtrip() {
        let mut p = Partition::singletons(4);
        let before = p.clone();
        let tok = p.combine(1, 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.cluster(1), &[1, 3]);
        p.undo(tok);
        assert_eq!(p, before);
    }

    #[test]
    fn combine_keeps_lower_index() {
        let mut p = Partition::singletons(3);
        p.combine(2, 0);
        assert_eq!(p.cluster(0), &[0, 2]);
        assert_eq!(p.cluster(1), &[1]);
    }

    #[test]
    fn nested_undo_lifo() {
        let mut p = Partition::singletons(5);
        let before = p.clone();
        let t1 = p.combine(0, 1);
        let t2 = p.combine(0, 2); // cluster 2 is thread 3 after first merge
        p.undo(t2);
        p.undo(t1);
        assert_eq!(p, before);
    }

    #[test]
    fn count_of_size() {
        let p = Partition::from_clusters(vec![vec![0, 1], vec![2], vec![3, 4]]);
        assert_eq!(p.count_of_size(2), 2);
        assert_eq!(p.count_of_size(1), 1);
        assert_eq!(p.count_of_size(3), 0);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_combine_panics() {
        let mut p = Partition::singletons(2);
        p.combine(1, 1);
    }

    fn demo_matrix(n: usize) -> SymMatrix<u64> {
        let mut m = SymMatrix::new(n, 0u64);
        let mut v = 1;
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(i, j, v);
                v += 3;
            }
        }
        m
    }

    /// Every cached cross/sum equals the freshly computed value.
    fn assert_caches_fresh(p: &Partition, cid: CrossId, sid: SumId, m: &SymMatrix<u64>, w: &[u64]) {
        for a in 0..p.len() {
            assert_eq!(
                p.sum(sid, a),
                p.cluster(a).iter().map(|&t| w[t]).sum::<u64>(),
                "sum({a})"
            );
            for b in 0..p.len() {
                if a == b {
                    continue; // the cache defines the diagonal as 0
                }
                assert_eq!(
                    p.cross(cid, a, b),
                    m.cross_sum(p.cluster(a), p.cluster(b)),
                    "cross({a},{b})"
                );
            }
        }
    }

    #[test]
    fn caches_track_combines_and_undos() {
        let m = demo_matrix(6);
        let w = [3u64, 1, 4, 1, 5, 9];
        let mut p = Partition::singletons(6);
        let cid = p.register_cross(&m);
        let sid = p.register_sum(&w);
        assert_caches_fresh(&p, cid, sid, &m, &w);

        let before = p.clone();
        let t1 = p.combine(1, 4);
        assert_caches_fresh(&p, cid, sid, &m, &w);
        let t2 = p.combine(0, 1); // merges {0} with {1,4}
        assert_caches_fresh(&p, cid, sid, &m, &w);
        let t3 = p.combine(2, 3);
        assert_caches_fresh(&p, cid, sid, &m, &w);

        p.undo(t3);
        p.undo(t2);
        p.undo(t1);
        // Exact restoration, caches included (derived PartialEq covers them).
        assert_eq!(p, before);
    }

    #[test]
    fn cross_diagonal_is_zero() {
        let m = demo_matrix(3);
        let mut p = Partition::singletons(3);
        let cid = p.register_cross(&m);
        assert_eq!(p.cross(cid, 1, 1), 0);
    }
}
