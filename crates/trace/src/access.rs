//! Aggregated per-address access counts.
//!
//! [`AddrCounts`] is the currency of the fused generate-and-profile
//! front end: a producer that already knows its access pattern (the
//! synthetic workload generator, a trace scanner) summarises each burst
//! of references as one `(address, reads, writes)` entry instead of
//! handing downstream passes the full reference stream. Entries are
//! *unaggregated* — the same address may appear many times in one
//! thread's list — and carry no ordering guarantees; consumers fold
//! them with commutative addition, so any grouping of the same
//! references produces identical totals.

/// Read/write counts of one thread against one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AddrCounts {
    /// The byte address accessed (raw, see [`crate::Address`]).
    pub addr: u64,
    /// Number of loads.
    pub reads: u32,
    /// Number of stores.
    pub writes: u32,
}

impl AddrCounts {
    /// A fresh entry for `addr` with zero counts.
    #[inline]
    pub fn new(addr: u64) -> Self {
        AddrCounts {
            addr,
            reads: 0,
            writes: 0,
        }
    }

    /// Total references (loads + stores).
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads as u64 + self.writes as u64
    }

    /// Counts one access.
    #[inline]
    pub fn bump(&mut self, write: bool) {
        if write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_total() {
        let mut c = AddrCounts::new(0x8000);
        c.bump(false);
        c.bump(false);
        c.bump(true);
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.addr, 0x8000);
    }
}
