//! Thread placement algorithms from Thekkath & Eggers (ISCA 1994).
//!
//! Given `t` threads and `p` processors, a placement algorithm maps each
//! thread to a processor. The paper's algorithms start with every thread
//! in its own *cluster* and iteratively combine clusters until exactly
//! `p` remain, subject to a *thread-balance* constraint (final cluster
//! sizes are ⌊t/p⌋ or ⌈t/p⌉) and, for the `+LB` variants, a *load*
//! constraint. What varies between algorithms is the pairwise metric that
//! decides which clusters combine next.
//!
//! This crate provides:
//!
//! * [`PlacementAlgorithm`] — every algorithm of the paper's §2
//!   (SHARE-REFS, SHARE-ADDR, MIN-PRIV, MIN-INVS, MAX-WRITES, MIN-SHARE,
//!   their `+LB` variants, LOAD-BAL, RANDOM) plus the §4.2
//!   coherence-traffic placement,
//! * [`PlacementInputs`] — the statically measured program
//!   characteristics an algorithm consumes,
//! * [`PlacementMap`] — the thread → processor map fed to the simulator,
//! * [`engine`] — the generic cluster-combining engine with
//!   thread-balance feasibility checking and backtracking (paper §2.1
//!   step 4).
//!
//! # Example
//!
//! ```
//! use placesim_trace::{Address, MemRef, ProgramTrace, ThreadId, ThreadTrace};
//! use placesim_analysis::SharingAnalysis;
//! use placesim_placement::{PlacementAlgorithm, PlacementInputs};
//!
//! // Four threads; 0 & 1 share heavily, 2 & 3 share heavily.
//! let mk = |addr: u64| -> ThreadTrace {
//!     std::iter::repeat(MemRef::read(Address::new(addr))).take(10).collect()
//! };
//! let prog = ProgramTrace::new("pairs", vec![mk(0x10), mk(0x10), mk(0x20), mk(0x20)]);
//! let sharing = SharingAnalysis::measure(&prog);
//! let lengths = vec![10, 10, 10, 10];
//!
//! let inputs = PlacementInputs::new(&sharing, &lengths);
//! let map = PlacementAlgorithm::ShareRefs.place(&inputs, 2)?;
//! // The sharers are co-located.
//! assert_eq!(map.processor_of(ThreadId::new(0)), map.processor_of(ThreadId::new(1)));
//! assert_eq!(map.processor_of(ThreadId::new(2)), map.processor_of(ThreadId::new(3)));
//! # Ok::<(), placesim_placement::PlacementError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithms;
pub mod engine;
mod error;
pub mod kl;
mod map;
mod metrics;
mod partition;
pub mod quality;
mod score;

pub use algorithms::{thread_lengths, PlacementAlgorithm, PlacementInputs};
pub use engine::ScoreMode;
pub use error::PlacementError;
pub use map::{PlacementMap, ProcessorId};
pub use metrics::{
    CoherenceMetric, MaxWritesMetric, MetricCache, MinInvsMetric, MinPrivMetric, MinShareMetric,
    PairMetric, ShareAddrMetric, ShareRefsMetric,
};
pub use partition::{BalanceSpec, CrossId, Partition, SumId};
pub use quality::PlacementQuality;
pub use score::Score;
