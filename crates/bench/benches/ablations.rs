//! Criterion benchmarks for the design-choice ablations called out in
//! DESIGN.md: how the simulator's wall-clock cost responds to the
//! architectural knobs. (The *simulated-cycle* ablation results are
//! produced by `cargo run -p placesim-bench --bin ablation`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use placesim::PreparedApp;
use placesim_machine::{simulate, ArchConfig};
use placesim_placement::PlacementAlgorithm;
use placesim_workloads::{spec, GenOptions};

fn bench_ablations(c: &mut Criterion) {
    let opts = GenOptions {
        scale: 0.02,
        seed: 5,
    };
    let app = PreparedApp::prepare(&spec("mp3d").unwrap(), &opts);
    let map = PlacementAlgorithm::Random
        .place(&app.placement_inputs(), 4)
        .expect("placement");
    let refs = app.prog.total_refs();

    let mut group = c.benchmark_group("ablation-knobs");
    group.throughput(Throughput::Elements(refs));

    for (label, config) in [
        ("baseline", ArchConfig::paper_default()),
        (
            "upgrade-stalls",
            ArchConfig::builder().upgrade_stalls(true).build().unwrap(),
        ),
        (
            "line-128",
            ArchConfig::builder().line_size(128).build().unwrap(),
        ),
        (
            "latency-200",
            ArchConfig::builder().memory_latency(200).build().unwrap(),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            b.iter(|| simulate(&app.prog, &map, cfg).expect("simulate"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_ablations
}
criterion_main!(benches);
