//! Append-only checkpoint journal for supervised sweeps
//! (`placesim-journal-v1`).
//!
//! A sweep journal is a line-oriented text file. The first line is a
//! **header** describing the exact grid being swept (app, generation
//! parameters, architecture, algorithm × processor-count axes); every
//! subsequent line commits one completed grid cell. Each line is
//! self-validating: a 16-hex-digit FNV-1a checksum of the JSON payload,
//! one space, then a single strictly-parsed JSON document:
//!
//! ```text
//! <crc16hex> {"schema": "placesim-journal-v1", "kind": "header", ...}
//! <crc16hex> {"schema": "placesim-journal-v1", "kind": "cell", "index": 0, ...}
//! ```
//!
//! Lines are appended with [`JournalWriter::commit_cell`], which writes,
//! flushes and fsyncs before reporting success — a committed cell
//! survives `SIGKILL` and power loss. Recovery ([`recover`]) keeps the
//! **longest valid prefix**: the first torn, corrupt, out-of-grid or
//! duplicate line ends the prefix, and everything from there on is
//! dropped with a per-line reason. [`JournalWriter::resume`] truncates
//! the file back to that prefix, so a crashed sweep restarts from
//! exactly the set of cells whose commits are provably durable.

use crate::manifest::ManifestEntry;
use placesim_machine::{ArchConfig, MissBreakdown, Protocol};
use placesim_obs::json::{self, JsonValue, JsonWriter};
use placesim_obs::sink;
use placesim_obs::FaultCounters;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

/// Schema tag stamped into every journal line; bump when the layout
/// changes.
pub const JOURNAL_SCHEMA: &str = "placesim-journal-v1";

/// Bounded retries [`JournalWriter::commit_cell`] spends absorbing
/// transient append failures before giving up.
const MAX_COMMIT_ATTEMPTS: u32 = 3;

/// FNV-1a 64-bit hash, the per-line checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a payload as a checksummed journal line (with trailing
/// newline).
fn to_line(payload: &str) -> String {
    format!("{:016x} {payload}\n", fnv1a64(payload.as_bytes()))
}

/// Any failure touching a sweep journal.
#[derive(Debug)]
pub enum JournalError {
    /// The filesystem failed underneath the journal.
    Io(io::Error),
    /// The journal is unrecoverable: missing, empty, or its header line
    /// is unreadable.
    Corrupt(String),
    /// The journal is readable but records a different sweep (other
    /// app, seed, scale, architecture or grid axes) than the one being
    /// resumed.
    Mismatch(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt(msg) => write!(f, "corrupt journal: {msg}"),
            JournalError::Mismatch(msg) => write!(f, "journal mismatch: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The sweep a journal belongs to: the exact grid and inputs. Resume
/// refuses to mix journals across sweeps — every field here must match.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// Application (trace) name.
    pub app: String,
    /// Trace scale factor.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
    /// Architecture simulated.
    pub config: ArchConfig,
    /// Algorithm axis, in grid order (paper names).
    pub algorithms: Vec<String>,
    /// Processor-count axis, in grid order.
    pub processors: Vec<usize>,
}

impl JournalHeader {
    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.algorithms.len() * self.processors.len()
    }

    /// The `(algorithm, processors)` pair of a cell index
    /// (algorithm-major order, matching [`crate::run_sweep`]).
    pub fn cell(&self, index: usize) -> Option<(&str, usize)> {
        if index >= self.cell_count() || self.processors.is_empty() {
            return None;
        }
        Some((
            self.algorithms[index / self.processors.len()].as_str(),
            self.processors[index % self.processors.len()],
        ))
    }

    /// The header as a checksummed journal line (with trailing newline).
    pub fn to_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", JOURNAL_SCHEMA);
        w.field_str("kind", "header");
        w.field_str("app", &self.app);
        w.field_f64("scale", self.scale);
        w.field_u64("seed", self.seed);
        w.key("config");
        w.begin_object();
        w.field_u64("cache_bytes", self.config.cache_size());
        w.field_u64("line_bytes", self.config.line_size());
        w.field_u64("associativity", u64::from(self.config.associativity()));
        w.field_u64("memory_latency", self.config.memory_latency());
        w.field_u64("memory_occupancy", self.config.memory_occupancy());
        w.field_u64("context_switch", self.config.context_switch());
        w.field_str("protocol", self.config.protocol().as_str());
        w.end_object();
        w.key("algorithms");
        w.begin_array();
        for a in &self.algorithms {
            w.value_str(a);
        }
        w.end_array();
        w.key("processors");
        w.begin_array();
        for &p in &self.processors {
            w.value_u64(p as u64);
        }
        w.end_array();
        w.end_object();
        to_line(&w.finish())
    }

    fn from_doc(doc: &JsonValue) -> Result<Self, String> {
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("header field {key:?} is not a string"))
        };
        let cfg = doc.get("config").ok_or("header has no config block")?;
        let cfg_u64 = |key: &str| {
            cfg.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("config.{key} is not an unsigned integer"))
        };
        // Additive field: headers written before protocols existed have
        // no config.protocol and mean the paper's write-invalidate
        // machine; a present-but-unknown value is corruption.
        let protocol = match cfg.get("protocol") {
            None => Protocol::Wi,
            Some(v) => v
                .as_str()
                .ok_or_else(|| "config.protocol is not a string".to_owned())?
                .parse::<Protocol>()
                .map_err(|e| e.to_string())?,
        };
        let config = ArchConfig::builder()
            .cache_size(cfg_u64("cache_bytes")?)
            .line_size(cfg_u64("line_bytes")?)
            .associativity(
                u32::try_from(cfg_u64("associativity")?)
                    .map_err(|_| "config.associativity exceeds u32".to_owned())?,
            )
            .memory_latency(cfg_u64("memory_latency")?)
            .memory_occupancy(cfg_u64("memory_occupancy")?)
            .context_switch(cfg_u64("context_switch")?)
            .protocol(protocol)
            .build()
            .map_err(|e| format!("header config is not buildable: {e}"))?;
        let algorithms = doc
            .get("algorithms")
            .and_then(JsonValue::as_array)
            .ok_or("header field \"algorithms\" is not an array")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| "algorithms entry is not a string".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let processors = doc
            .get("processors")
            .and_then(JsonValue::as_array)
            .ok_or("header field \"processors\" is not an array")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|p| p as usize)
                    .ok_or_else(|| "processors entry is not an unsigned integer".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
        if algorithms.is_empty() || processors.is_empty() {
            return Err("header grid axes must be non-empty".into());
        }
        Ok(JournalHeader {
            app: str_field("app")?,
            scale: doc
                .get("scale")
                .and_then(JsonValue::as_f64)
                .ok_or("header field \"scale\" is not a number")?,
            seed: doc
                .get("seed")
                .and_then(JsonValue::as_u64)
                .ok_or("header field \"seed\" is not an unsigned integer")?,
            config,
            algorithms,
            processors,
        })
    }
}

/// One committed grid cell: its index, how many attempts it took, and
/// the manifest entry that reproduces its row of the final report
/// bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalCell {
    /// Cell index in algorithm-major grid order.
    pub index: usize,
    /// Attempts spent before the cell succeeded (1 = first try).
    pub attempts: u32,
    /// The committed result.
    pub entry: ManifestEntry,
}

impl JournalCell {
    /// The cell as a checksummed journal line (with trailing newline).
    pub fn to_line(&self) -> String {
        let e = &self.entry;
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", JOURNAL_SCHEMA);
        w.field_str("kind", "cell");
        w.field_u64("index", self.index as u64);
        w.field_u64("attempts", u64::from(self.attempts));
        w.field_str("algorithm", &e.algorithm);
        w.field_u64("processors", e.processors as u64);
        w.field_u64("execution_time", e.execution_time);
        w.field_u64("total_refs", e.total_refs);
        w.field_u64("total_misses", e.total_misses);
        w.field_f64("miss_rate", e.miss_rate);
        w.field_u64("coherence_traffic", e.coherence_traffic);
        w.field_u64("update_traffic", e.update_traffic);
        w.field_u64("compulsory", e.misses.compulsory);
        w.field_u64("intra_thread_conflict", e.misses.intra_thread_conflict);
        w.field_u64("inter_thread_conflict", e.misses.inter_thread_conflict);
        w.field_u64("invalidation", e.misses.invalidation);
        w.end_object();
        to_line(&w.finish())
    }

    fn from_doc(doc: &JsonValue) -> Result<Self, String> {
        let u = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("cell field {key:?} is not an unsigned integer"))
        };
        Ok(JournalCell {
            index: u("index")? as usize,
            attempts: u32::try_from(u("attempts")?)
                .map_err(|_| "cell attempts exceeds u32".to_owned())?,
            entry: ManifestEntry {
                algorithm: doc
                    .get("algorithm")
                    .and_then(JsonValue::as_str)
                    .ok_or("cell field \"algorithm\" is not a string")?
                    .to_owned(),
                processors: u("processors")? as usize,
                execution_time: u("execution_time")?,
                total_refs: u("total_refs")?,
                total_misses: u("total_misses")?,
                miss_rate: doc
                    .get("miss_rate")
                    .and_then(JsonValue::as_f64)
                    .ok_or("cell field \"miss_rate\" is not a number")?,
                coherence_traffic: u("coherence_traffic")?,
                // Additive-in-v1: journals written before write-update
                // protocols existed carry no update_traffic.
                update_traffic: doc
                    .get("update_traffic")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
                misses: MissBreakdown {
                    compulsory: u("compulsory")?,
                    intra_thread_conflict: u("intra_thread_conflict")?,
                    inter_thread_conflict: u("inter_thread_conflict")?,
                    invalidation: u("invalidation")?,
                },
            },
        })
    }
}

/// One journal line discarded during recovery, with the exact reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DroppedLine {
    /// 1-based line number in the journal file.
    pub line: usize,
    /// Why the line was dropped.
    pub reason: String,
}

impl fmt::Display for DroppedLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

/// The result of recovering a journal: the longest valid prefix plus an
/// exact account of everything that was dropped.
#[derive(Debug)]
pub struct JournalRecovery {
    /// The sweep the journal belongs to.
    pub header: JournalHeader,
    /// Committed cells, in append order, each index unique.
    pub cells: Vec<JournalCell>,
    /// Lines discarded (empty when the journal is pristine).
    pub dropped: Vec<DroppedLine>,
    /// Byte length of the valid prefix; everything past this offset is
    /// garbage that resume truncates away.
    pub valid_bytes: u64,
}

impl JournalRecovery {
    /// Looks up a committed cell by grid index.
    pub fn cell(&self, index: usize) -> Option<&JournalCell> {
        self.cells.iter().find(|c| c.index == index)
    }
}

/// Parses one checksummed line into its JSON document.
fn parse_line(body: &str) -> Result<JsonValue, String> {
    let (crc_hex, payload) = body
        .split_once(' ')
        .ok_or("missing checksum prefix".to_owned())?;
    if crc_hex.len() != 16 {
        return Err("checksum prefix is not 16 hex digits".into());
    }
    let crc =
        u64::from_str_radix(crc_hex, 16).map_err(|_| "checksum prefix is not hex".to_owned())?;
    if crc != fnv1a64(payload.as_bytes()) {
        return Err("checksum mismatch (torn or corrupted line)".into());
    }
    let doc = json::parse(payload).map_err(|e| format!("payload rejected: {e}"))?;
    if doc.get("schema").and_then(JsonValue::as_str) != Some(JOURNAL_SCHEMA) {
        return Err(format!("payload is not schema {JOURNAL_SCHEMA}"));
    }
    Ok(doc)
}

/// Recovers a journal from its raw bytes, keeping the longest valid
/// prefix. The header line must be intact — without it the journal
/// cannot be attributed to a sweep and is [`JournalError::Corrupt`].
/// Every later defect (torn final line, interleaved garbage, bad
/// checksum, invalid UTF-8, duplicate or out-of-grid cells, CRLF
/// endings are tolerated) ends the prefix: that line and everything
/// after it are reported in [`JournalRecovery::dropped`].
///
/// # Errors
///
/// [`JournalError::Corrupt`] when the header line is missing or
/// unreadable.
pub fn recover(data: &[u8]) -> Result<JournalRecovery, JournalError> {
    // Split into newline-terminated chunks by hand so byte offsets stay
    // exact even across invalid UTF-8.
    let mut chunks: Vec<&[u8]> = Vec::new();
    let mut start = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            chunks.push(&data[start..=i]);
            start = i + 1;
        }
    }
    if start < data.len() {
        chunks.push(&data[start..]); // unterminated tail
    }

    // Line 1: the header. Unreadable header = unrecoverable journal.
    let first = chunks
        .first()
        .ok_or_else(|| JournalError::Corrupt("journal is empty".into()))?;
    let header_body = line_body(first)
        .ok_or_else(|| JournalError::Corrupt("header line is torn or not UTF-8".into()))?;
    let header_doc =
        parse_line(header_body).map_err(|e| JournalError::Corrupt(format!("header {e}")))?;
    if header_doc.get("kind").and_then(JsonValue::as_str) != Some("header") {
        return Err(JournalError::Corrupt(
            "first line is not a header record".into(),
        ));
    }
    let header = JournalHeader::from_doc(&header_doc).map_err(JournalError::Corrupt)?;

    let mut cells: Vec<JournalCell> = Vec::new();
    let mut dropped = Vec::new();
    let mut valid_bytes = first.len() as u64;
    let mut invalid_at: Option<usize> = None;

    for (i, chunk) in chunks.iter().enumerate().skip(1) {
        let line_no = i + 1;
        if let Some(first_bad) = invalid_at {
            dropped.push(DroppedLine {
                line: line_no,
                reason: format!("discarded: follows invalid line {first_bad}"),
            });
            continue;
        }
        match validate_cell_line(chunk, &header, &cells) {
            Ok(cell) => {
                cells.push(cell);
                valid_bytes += chunk.len() as u64;
            }
            Err(reason) => {
                dropped.push(DroppedLine {
                    line: line_no,
                    reason,
                });
                invalid_at = Some(line_no);
            }
        }
    }

    Ok(JournalRecovery {
        header,
        cells,
        dropped,
        valid_bytes,
    })
}

/// The UTF-8 body of a newline-terminated chunk, with the line
/// terminator (`\n` or `\r\n`) stripped. `None` if the chunk is
/// unterminated (torn) or not UTF-8.
fn line_body(chunk: &[u8]) -> Option<&str> {
    let without_nl = chunk.strip_suffix(b"\n")?;
    let body = without_nl.strip_suffix(b"\r").unwrap_or(without_nl);
    std::str::from_utf8(body).ok()
}

/// Validates one cell chunk against the header grid and the cells
/// already accepted.
fn validate_cell_line(
    chunk: &[u8],
    header: &JournalHeader,
    accepted: &[JournalCell],
) -> Result<JournalCell, String> {
    let body = line_body(chunk).ok_or("torn line (no terminating newline or invalid UTF-8)")?;
    if body.is_empty() {
        return Err("empty line".into());
    }
    let doc = parse_line(body)?;
    match doc.get("kind").and_then(JsonValue::as_str) {
        Some("cell") => {}
        Some(other) => return Err(format!("unexpected record kind {other:?}")),
        None => return Err("record has no kind".into()),
    }
    let cell = JournalCell::from_doc(&doc)?;
    let (algo, procs) = header
        .cell(cell.index)
        .ok_or_else(|| format!("cell index {} is outside the grid", cell.index))?;
    if cell.entry.algorithm != algo || cell.entry.processors != procs {
        return Err(format!(
            "cell {} claims ({}, {}p) but the grid says ({algo}, {procs}p)",
            cell.index, cell.entry.algorithm, cell.entry.processors
        ));
    }
    if accepted.iter().any(|c| c.index == cell.index) {
        return Err(format!("duplicate entry for cell {}", cell.index));
    }
    Ok(cell)
}

/// Reads and recovers a journal file.
///
/// # Errors
///
/// [`JournalError::Io`] if the file cannot be read,
/// [`JournalError::Corrupt`] if its header is unreadable.
pub fn read_journal(path: &Path) -> Result<JournalRecovery, JournalError> {
    recover(&fs::read(path)?)
}

/// An open, fsync-durable sweep journal. Every commit is flushed and
/// fsynced before it is reported durable; failed appends are truncated
/// back to the last committed byte so a transient I/O error never
/// leaves a torn line for the *same* process to trip over (a crash
/// mid-append is handled by [`recover`] instead).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    committed: u64,
    #[cfg(feature = "chaos")]
    chaos: Option<crate::chaos::ChaosPlan>,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and durably writes the
    /// header line.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, JournalError> {
        let mut file = File::options()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let line = header.to_line();
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        sink::fsync_dir(sink::parent_dir(path))?;
        Ok(JournalWriter {
            file,
            committed: line.len() as u64,
            #[cfg(feature = "chaos")]
            chaos: None,
        })
    }

    /// Opens an existing journal for resumption: recovers the longest
    /// valid prefix, verifies it records the same sweep as `expected`,
    /// truncates any garbage tail, and positions the writer for further
    /// commits.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] / [`JournalError::Corrupt`] as in
    /// [`read_journal`], plus [`JournalError::Mismatch`] when the
    /// journal belongs to a different sweep.
    pub fn resume(
        path: &Path,
        expected: &JournalHeader,
    ) -> Result<(Self, JournalRecovery), JournalError> {
        let recovery = read_journal(path)?;
        if &recovery.header != expected {
            return Err(JournalError::Mismatch(format!(
                "journal records a different sweep (journal app {:?} seed {} scale {} protocol \
                 {} over {}x{} cells); refusing to mix results",
                recovery.header.app,
                recovery.header.seed,
                recovery.header.scale,
                recovery.header.config.protocol(),
                recovery.header.algorithms.len(),
                recovery.header.processors.len(),
            )));
        }
        let mut file = File::options().write(true).open(path)?;
        file.set_len(recovery.valid_bytes)?;
        file.seek(SeekFrom::Start(recovery.valid_bytes))?;
        file.sync_data()?;
        Ok((
            JournalWriter {
                file,
                committed: recovery.valid_bytes,
                #[cfg(feature = "chaos")]
                chaos: None,
            },
            recovery,
        ))
    }

    /// Arms this writer with a chaos plan: journal faults from the plan
    /// are injected into first append attempts.
    #[cfg(feature = "chaos")]
    pub fn with_chaos(mut self, plan: Option<crate::chaos::ChaosPlan>) -> Self {
        self.chaos = plan;
        self
    }

    /// Durably commits one cell: append, flush, fsync. Transient append
    /// failures (including injected chaos faults) are absorbed with
    /// bounded retries, truncating back to the last committed byte
    /// between attempts; `faults` records every absorbed error and
    /// retry.
    ///
    /// # Errors
    ///
    /// The last I/O error when every retry is exhausted.
    pub fn commit_cell(
        &mut self,
        cell: &JournalCell,
        faults: &mut FaultCounters,
    ) -> Result<(), JournalError> {
        let line = cell.to_line();
        let mut attempt = 0u32;
        loop {
            match self.append_once(line.as_bytes(), cell.index, attempt) {
                Ok(()) => {
                    self.committed += line.len() as u64;
                    return Ok(());
                }
                Err(e) => {
                    faults.io_errors += 1;
                    // Rewind over any partial write before retrying (or
                    // giving up): the on-disk prefix must stay valid.
                    self.file.set_len(self.committed)?;
                    self.file.seek(SeekFrom::Start(self.committed))?;
                    attempt += 1;
                    if attempt >= MAX_COMMIT_ATTEMPTS {
                        return Err(JournalError::Io(e));
                    }
                    faults.retries += 1;
                }
            }
        }
    }

    /// One raw append attempt: write + fsync, with chaos faults
    /// injected on first attempts when a plan is armed.
    fn append_once(&mut self, bytes: &[u8], cell_index: usize, attempt: u32) -> io::Result<()> {
        #[cfg(feature = "chaos")]
        if attempt == 0 {
            if let Some(fault) = self
                .chaos
                .as_ref()
                .and_then(|plan| plan.journal_fault(cell_index))
            {
                match fault {
                    crate::chaos::JournalFault::ShortWrite => {
                        // Make the torn state real on disk before
                        // failing, exactly as a crashed write would.
                        let half = bytes.len() / 2;
                        self.file.write_all(&bytes[..half])?;
                        self.file.sync_data()?;
                        return Err(io::Error::other("chaos: injected short write"));
                    }
                    crate::chaos::JournalFault::Error => {
                        return Err(io::Error::other("chaos: injected append error"));
                    }
                }
            }
        }
        #[cfg(not(feature = "chaos"))]
        let _ = (cell_index, attempt);
        self.file.write_all(bytes)?;
        self.file.sync_data()
    }

    /// Bytes durably committed so far.
    pub fn committed_bytes(&self) -> u64 {
        self.committed
    }
}

/// The result of recovering a [`RecordLog`]: the longest valid prefix
/// of records plus an exact account of everything dropped.
#[derive(Debug)]
pub struct RecordRecovery {
    /// Parsed records in append order.
    pub records: Vec<JsonValue>,
    /// Lines discarded (empty when the log is pristine).
    pub dropped: Vec<DroppedLine>,
    /// Byte length of the valid prefix; everything past this offset is
    /// garbage that [`RecordLog::open`] truncates away.
    pub valid_bytes: u64,
}

/// Recovers a generic record log from raw bytes, keeping the longest
/// valid prefix. Unlike sweep journals there is no mandatory header:
/// an empty file is a valid, empty log. A line survives when its
/// checksum verifies, its payload strictly parses, and the payload
/// carries `"schema": <schema>`; the first defect ends the prefix.
pub fn recover_records(data: &[u8], schema: &str) -> RecordRecovery {
    let mut chunks: Vec<&[u8]> = Vec::new();
    let mut start = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            chunks.push(&data[start..=i]);
            start = i + 1;
        }
    }
    if start < data.len() {
        chunks.push(&data[start..]); // unterminated tail
    }

    let mut records = Vec::new();
    let mut dropped = Vec::new();
    let mut valid_bytes = 0u64;
    let mut invalid_at: Option<usize> = None;
    for (i, chunk) in chunks.iter().enumerate() {
        let line_no = i + 1;
        if let Some(first_bad) = invalid_at {
            dropped.push(DroppedLine {
                line: line_no,
                reason: format!("discarded: follows invalid line {first_bad}"),
            });
            continue;
        }
        let parsed = line_body(chunk)
            .ok_or("torn line (no terminating newline or invalid UTF-8)".to_owned())
            .and_then(|body| {
                if body.is_empty() {
                    return Err("empty line".into());
                }
                let (crc_hex, payload) = body
                    .split_once(' ')
                    .ok_or("missing checksum prefix".to_owned())?;
                if crc_hex.len() != 16 {
                    return Err("checksum prefix is not 16 hex digits".into());
                }
                let crc = u64::from_str_radix(crc_hex, 16)
                    .map_err(|_| "checksum prefix is not hex".to_owned())?;
                if crc != fnv1a64(payload.as_bytes()) {
                    return Err("checksum mismatch (torn or corrupted line)".into());
                }
                let doc = json::parse(payload).map_err(|e| format!("payload rejected: {e}"))?;
                if doc.get("schema").and_then(JsonValue::as_str) != Some(schema) {
                    return Err(format!("payload is not schema {schema}"));
                }
                Ok(doc)
            });
        match parsed {
            Ok(doc) => {
                records.push(doc);
                valid_bytes += chunk.len() as u64;
            }
            Err(reason) => {
                dropped.push(DroppedLine {
                    line: line_no,
                    reason,
                });
                invalid_at = Some(line_no);
            }
        }
    }
    RecordRecovery {
        records,
        dropped,
        valid_bytes,
    }
}

/// A generic append-only checksummed record log, sharing the sweep
/// journal's line format (`<crc16hex> <json>\n`) and durability
/// discipline (append + flush + fsync, bounded retries rewinding to the
/// last committed byte) but parametrized over the payload schema. The
/// placement service layers its durable job queue on this.
#[derive(Debug)]
pub struct RecordLog {
    file: File,
    committed: u64,
}

impl RecordLog {
    /// Opens (creating if absent) the log at `path`: recovers the
    /// longest valid prefix of `schema` records, truncates any garbage
    /// tail, and positions the writer for further appends.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path, schema: &str) -> Result<(Self, RecordRecovery), JournalError> {
        let data = match fs::read(path) {
            Ok(data) => data,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(JournalError::Io(e)),
        };
        let recovery = recover_records(&data, schema);
        let mut file = File::options()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(recovery.valid_bytes)?;
        file.seek(SeekFrom::Start(recovery.valid_bytes))?;
        file.sync_data()?;
        sink::fsync_dir(sink::parent_dir(path))?;
        Ok((
            RecordLog {
                file,
                committed: recovery.valid_bytes,
            },
            recovery,
        ))
    }

    /// Durably appends one record: checksum-frame, write, flush, fsync.
    /// `payload` must be one strict JSON document carrying the log's
    /// schema tag — recovery drops anything else. Transient append
    /// failures are absorbed with bounded retries, truncating back to
    /// the last committed byte between attempts; `faults` records every
    /// absorbed error and retry.
    ///
    /// # Errors
    ///
    /// The last I/O error when every retry is exhausted.
    pub fn append(
        &mut self,
        payload: &str,
        faults: &mut FaultCounters,
    ) -> Result<(), JournalError> {
        let line = to_line(payload);
        let mut attempt = 0u32;
        loop {
            let res = self
                .file
                .write_all(line.as_bytes())
                .and_then(|()| self.file.sync_data());
            match res {
                Ok(()) => {
                    self.committed += line.len() as u64;
                    return Ok(());
                }
                Err(e) => {
                    faults.io_errors += 1;
                    self.file.set_len(self.committed)?;
                    self.file.seek(SeekFrom::Start(self.committed))?;
                    attempt += 1;
                    if attempt >= MAX_COMMIT_ATTEMPTS {
                        return Err(JournalError::Io(e));
                    }
                    faults.retries += 1;
                }
            }
        }
    }

    /// Bytes durably committed so far.
    pub fn committed_bytes(&self) -> u64 {
        self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("placesim-journal-{tag}-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    pub(crate) fn sample_header() -> JournalHeader {
        JournalHeader {
            app: "water".into(),
            scale: 0.002,
            seed: 3,
            config: ArchConfig::paper_default(),
            algorithms: vec!["RANDOM".into(), "LOAD-BAL".into()],
            processors: vec![2, 4],
        }
    }

    pub(crate) fn sample_cell(index: usize) -> JournalCell {
        let header = sample_header();
        let (algo, procs) = header.cell(index).unwrap();
        JournalCell {
            index,
            attempts: 1,
            entry: ManifestEntry {
                algorithm: algo.to_owned(),
                processors: procs,
                execution_time: 1000 + index as u64,
                total_refs: 500,
                total_misses: 50,
                miss_rate: 0.1,
                coherence_traffic: 7,
                update_traffic: 0,
                misses: MissBreakdown::default(),
            },
        }
    }

    #[test]
    fn header_grid_mapping_is_algorithm_major() {
        let h = sample_header();
        assert_eq!(h.cell_count(), 4);
        assert_eq!(h.cell(0), Some(("RANDOM", 2)));
        assert_eq!(h.cell(1), Some(("RANDOM", 4)));
        assert_eq!(h.cell(2), Some(("LOAD-BAL", 2)));
        assert_eq!(h.cell(3), Some(("LOAD-BAL", 4)));
        assert_eq!(h.cell(4), None);
    }

    #[test]
    fn lines_round_trip_through_recovery() {
        let h = sample_header();
        let mut text = h.to_line();
        text.push_str(&sample_cell(0).to_line());
        text.push_str(&sample_cell(2).to_line());
        let rec = recover(text.as_bytes()).unwrap();
        assert_eq!(rec.header, h);
        assert_eq!(rec.cells.len(), 2);
        assert_eq!(rec.cells[0], sample_cell(0));
        assert_eq!(rec.cells[1], sample_cell(2));
        assert!(rec.dropped.is_empty());
        assert_eq!(rec.valid_bytes, text.len() as u64);
        assert_eq!(rec.cell(2), Some(&sample_cell(2)));
        assert_eq!(rec.cell(1), None);
    }

    #[test]
    fn writer_creates_commits_and_resumes() {
        let dir = tmp_dir("writer");
        let path = dir.join("sweep.journal");
        let h = sample_header();
        let mut faults = FaultCounters::new();
        let mut w = JournalWriter::create(&path, &h).unwrap();
        w.commit_cell(&sample_cell(1), &mut faults).unwrap();
        assert_eq!(faults, FaultCounters::new());
        let on_disk = fs::metadata(&path).unwrap().len();
        assert_eq!(w.committed_bytes(), on_disk);
        drop(w);

        let (mut w, rec) = JournalWriter::resume(&path, &h).unwrap();
        assert_eq!(rec.cells, vec![sample_cell(1)]);
        assert!(rec.dropped.is_empty());
        w.commit_cell(&sample_cell(0), &mut faults).unwrap();
        drop(w);
        let rec = read_journal(&path).unwrap();
        assert_eq!(rec.cells.len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_truncates_torn_tail() {
        let dir = tmp_dir("torn");
        let path = dir.join("sweep.journal");
        let h = sample_header();
        let mut faults = FaultCounters::new();
        let mut w = JournalWriter::create(&path, &h).unwrap();
        w.commit_cell(&sample_cell(0), &mut faults).unwrap();
        let good_len = w.committed_bytes();
        drop(w);
        // Crash mid-append: half a line, no newline.
        let torn = sample_cell(1).to_line();
        let mut f = File::options().append(true).open(&path).unwrap();
        f.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
        drop(f);

        let (w, rec) = JournalWriter::resume(&path, &h).unwrap();
        assert_eq!(rec.cells, vec![sample_cell(0)]);
        assert_eq!(rec.dropped.len(), 1);
        assert!(rec.dropped[0].reason.contains("torn"), "{:?}", rec.dropped);
        assert_eq!(rec.valid_bytes, good_len);
        assert_eq!(fs::metadata(&path).unwrap().len(), good_len);
        drop(w);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_sweep() {
        let dir = tmp_dir("mismatch");
        let path = dir.join("sweep.journal");
        let h = sample_header();
        drop(JournalWriter::create(&path, &h).unwrap());
        let mut other = sample_header();
        other.seed = 99;
        assert!(matches!(
            JournalWriter::resume(&path, &other),
            Err(JournalError::Mismatch(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_protocol() {
        // The header pins the coherence protocol: resuming a wi sweep
        // with a dragon config must refuse rather than mix results.
        let dir = tmp_dir("protocol-mismatch");
        let path = dir.join("sweep.journal");
        let h = sample_header();
        drop(JournalWriter::create(&path, &h).unwrap());
        let mut other = sample_header();
        let mut builder = ArchConfig::builder();
        builder.protocol(Protocol::Dragon);
        other.config = builder.build().unwrap();
        let err = JournalWriter::resume(&path, &other)
            .err()
            .expect("resume must refuse a protocol mismatch");
        match err {
            JournalError::Mismatch(msg) => assert!(msg.contains("protocol wi"), "{msg}"),
            other => panic!("expected mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_round_trips_non_default_protocol() {
        let mut h = sample_header();
        let mut builder = ArchConfig::builder();
        builder.protocol(Protocol::Mesi);
        h.config = builder.build().unwrap();
        let rec = recover(h.to_line().as_bytes()).unwrap();
        assert_eq!(rec.header, h);
        assert_eq!(rec.header.config.protocol(), Protocol::Mesi);
    }

    #[test]
    fn pre_protocol_header_defaults_to_write_invalidate() {
        // A header without config.protocol (written before protocols
        // existed) parses as the paper's machine; a junk protocol is
        // corruption.
        let h = sample_header();
        let line = h.to_line();
        let (_, payload) = line.split_once(' ').unwrap();
        let payload = payload.trim_end(); // drop the newline before re-checksumming
        let stripped = payload.replacen(", \"protocol\": \"wi\"", "", 1);
        assert_ne!(&stripped, payload);
        let reline = to_line(&stripped);
        let rec = recover(reline.as_bytes()).unwrap();
        assert_eq!(rec.header.config.protocol(), Protocol::Wi);

        let junk = payload.replacen("\"protocol\": \"wi\"", "\"protocol\": \"moesi\"", 1);
        assert!(matches!(
            recover(to_line(&junk).as_bytes()),
            Err(JournalError::Corrupt(msg)) if msg.contains("unknown protocol")
        ));
    }

    #[test]
    fn corrupt_header_is_unrecoverable() {
        assert!(matches!(
            recover(b""),
            Err(JournalError::Corrupt(msg)) if msg.contains("empty")
        ));
        assert!(matches!(
            recover(b"not a journal\n"),
            Err(JournalError::Corrupt(_))
        ));
        // A cell line first (no header) is unrecoverable too.
        let cell_first = sample_cell(0).to_line();
        assert!(matches!(
            recover(cell_first.as_bytes()),
            Err(JournalError::Corrupt(_))
        ));
    }

    #[test]
    fn record_log_round_trips_and_truncates_garbage() {
        let dir = tmp_dir("recordlog");
        let path = dir.join("service.journal");
        let mut faults = FaultCounters::new();
        let (mut log, rec) = RecordLog::open(&path, "placesim-service-v1").unwrap();
        assert!(rec.records.is_empty() && rec.dropped.is_empty());
        log.append(
            "{\"schema\": \"placesim-service-v1\", \"kind\": \"job\", \"id\": 1}",
            &mut faults,
        )
        .unwrap();
        log.append(
            "{\"schema\": \"placesim-service-v1\", \"kind\": \"done\", \"id\": 1}",
            &mut faults,
        )
        .unwrap();
        let good_len = log.committed_bytes();
        drop(log);
        // Torn tail: half a line appended by a crashed writer.
        let mut f = File::options().append(true).open(&path).unwrap();
        f.write_all(b"deadbeef tor").unwrap();
        drop(f);

        let (log, rec) = RecordLog::open(&path, "placesim-service-v1").unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(
            rec.records[1].get("kind").and_then(JsonValue::as_str),
            Some("done")
        );
        assert_eq!(rec.dropped.len(), 1);
        assert_eq!(rec.valid_bytes, good_len);
        assert_eq!(fs::metadata(&path).unwrap().len(), good_len);
        drop(log);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_log_rejects_foreign_schema_lines() {
        let mut text = to_line("{\"schema\": \"placesim-service-v1\", \"id\": 1}");
        text.push_str(&to_line("{\"schema\": \"placesim-journal-v1\", \"id\": 2}"));
        text.push_str(&to_line("{\"schema\": \"placesim-service-v1\", \"id\": 3}"));
        let rec = recover_records(text.as_bytes(), "placesim-service-v1");
        // The foreign line ends the prefix; the valid line after it is
        // dropped too (longest valid *prefix*, not a filter).
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.dropped.len(), 2);
        assert!(
            rec.dropped[0].reason.contains("schema"),
            "{:?}",
            rec.dropped
        );
    }

    #[test]
    fn error_display_and_source() {
        let io_err = JournalError::from(io::Error::other("disk on fire"));
        assert!(io_err.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&io_err).is_some());
        let corrupt = JournalError::Corrupt("bad".into());
        assert!(corrupt.to_string().contains("corrupt"));
        assert!(std::error::Error::source(&corrupt).is_none());
    }
}
