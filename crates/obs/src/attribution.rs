//! Online coherence-traffic attribution.
//!
//! An [`AttrCollector`] ingests a stream of coherence events — each one
//! an (address, writer-thread, victim-thread) triple tagged with an
//! [`AttrKind`] — and aggregates three views online:
//!
//! * **Per-address hot list**: exact per-address counts while the
//!   number of distinct addresses stays below
//!   [`AttributionConfig::exact_limit`]; past that the table converts
//!   itself into a Misra–Gries top-K summary of
//!   [`AttributionConfig::sketch_k`] counters, so memory stays bounded
//!   on arbitrarily long streams. The classic Misra–Gries guarantee
//!   holds: for every address `a`, `true(a) - tracked(a) <=`
//!   [`AttrCollector::error_bound`], and any address whose true count
//!   exceeds the bound is guaranteed to be tracked.
//! * **Thread-pair traffic matrix**: exact (writer, victim) pair counts
//!   regardless of mode — the pair space is bounded by the thread count
//!   squared, so no sketching is needed.
//! * **Per-address sharing-run histograms**: for each tracked address,
//!   a [`Histogram`] of *run lengths* — maximal stretches of
//!   consecutive coherence events on that address attributed to the
//!   same writer thread. Long runs mean sharing is sequential (the
//!   paper's §5 observation) and migration would pay off.
//!
//! The collector is order-sensitive only through the run histograms and
//! the sketch's eviction choices; per-kind totals and the pair matrix
//! are exact and order-independent. Feeding the same event sequence in
//! the same order always produces a bit-identical report, which is what
//! the parallel-engine differential tests pin.
//!
//! Serialization is the `placesim-attribution-v1` schema, written with
//! the crate's [`JsonWriter`][crate::json::JsonWriter] and re-validated
//! by the strict parser ([`validate`], [`parse`]).

use crate::json::{self, JsonValue, JsonWriter};
use crate::timeline::NO_THREAD;
use crate::Histogram;
use std::collections::HashMap;

/// Schema tag carried by every attribution report.
pub const ATTRIBUTION_SCHEMA: &str = "placesim-attribution-v1";

/// Number of attribution event kinds.
pub const ATTR_KINDS: usize = 3;

/// The coherence events the engine attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// A write transaction invalidated a remote copy. Writer = the
    /// writing thread, victim = last thread to touch the invalidated
    /// slot.
    Invalidation,
    /// A Dragon write pushed an update to a remote sharer. Writer = the
    /// writing thread, victim = last thread to touch the updated slot.
    Update,
    /// A miss re-fetching a line a remote write previously invalidated.
    /// Writer = the thread whose write caused the invalidation, victim
    /// = the missing thread.
    CoherenceMiss,
}

impl AttrKind {
    /// All kinds in index order.
    pub const ALL: [AttrKind; ATTR_KINDS] = [
        AttrKind::Invalidation,
        AttrKind::Update,
        AttrKind::CoherenceMiss,
    ];

    /// Dense index of this kind.
    pub fn index(self) -> usize {
        match self {
            AttrKind::Invalidation => 0,
            AttrKind::Update => 1,
            AttrKind::CoherenceMiss => 2,
        }
    }
}

/// Sizing knobs for an [`AttrCollector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributionConfig {
    /// Distinct-address threshold below which the per-address table is
    /// exact. Crossing it converts the table into a Misra–Gries sketch.
    pub exact_limit: usize,
    /// Number of Misra–Gries counters kept after conversion.
    pub sketch_k: usize,
}

impl AttributionConfig {
    /// Builds a config, clamping both knobs to at least 1 (a zero-sized
    /// sketch could never hold a heavy hitter, and a zero exact limit
    /// would convert before the first event).
    pub fn new(exact_limit: usize, sketch_k: usize) -> Self {
        AttributionConfig {
            exact_limit: exact_limit.max(1),
            sketch_k: sketch_k.max(1),
        }
    }
}

impl Default for AttributionConfig {
    fn default() -> Self {
        AttributionConfig {
            exact_limit: 1 << 16,
            sketch_k: 1024,
        }
    }
}

/// Per-address aggregate tracked by the collector.
#[derive(Debug, Clone, PartialEq)]
struct AddrEntry {
    /// Misra–Gries counter (exact while the table is exact).
    count: u64,
    /// Per-kind event counts (approximate in sketch mode: they stop
    /// accumulating for an address while it is evicted).
    kinds: [u64; ATTR_KINDS],
    /// Writer thread of the currently open run, or [`NO_THREAD`].
    run_thread: u32,
    /// Length (in events) of the currently open run.
    run_len: u64,
    /// Completed run lengths.
    runs: Histogram,
}

impl AddrEntry {
    fn new() -> Self {
        AddrEntry {
            count: 0,
            kinds: [0; ATTR_KINDS],
            run_thread: NO_THREAD,
            run_len: 0,
            runs: Histogram::new(),
        }
    }

    /// Records one event on this address by `writer`.
    fn record(&mut self, kind: AttrKind, writer: u32) {
        self.count += 1;
        self.kinds[kind.index()] += 1;
        if self.run_thread == writer {
            self.run_len += 1;
        } else {
            self.flush_run();
            self.run_thread = writer;
            self.run_len = 1;
        }
    }

    /// Closes the open run (if any) into the histogram.
    fn flush_run(&mut self) {
        if self.run_len > 0 {
            self.runs.record(self.run_len);
            self.run_len = 0;
        }
        self.run_thread = NO_THREAD;
    }

    fn events(&self) -> u64 {
        self.kinds.iter().sum()
    }
}

/// Online aggregator of attributed coherence events; see the module
/// docs for the three views it maintains and their exactness.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrCollector {
    cfg: AttributionConfig,
    totals: [u64; ATTR_KINDS],
    /// Events whose writer thread was unknown (counted in totals but
    /// absent from the pair matrix).
    unattributed: u64,
    pairs: HashMap<(u32, u32), u64>,
    addrs: HashMap<u64, AddrEntry>,
    /// `false` = exact per-address table, `true` = Misra–Gries sketch.
    sketch: bool,
    /// Total error mass: count subtracted by Misra–Gries decrements
    /// plus the largest count dropped at exact→sketch conversion.
    error_bound: u64,
}

impl Default for AttrCollector {
    fn default() -> Self {
        Self::new(AttributionConfig::default())
    }
}

impl AttrCollector {
    /// Creates an empty collector with the given sizing.
    pub fn new(cfg: AttributionConfig) -> Self {
        AttrCollector {
            cfg: AttributionConfig {
                exact_limit: cfg.exact_limit.max(1),
                sketch_k: cfg.sketch_k.max(1),
            },
            totals: [0; ATTR_KINDS],
            unattributed: 0,
            pairs: HashMap::new(),
            addrs: HashMap::new(),
            sketch: false,
            error_bound: 0,
        }
    }

    /// Records one attributed coherence event. `writer` may be
    /// [`NO_THREAD`] when the responsible writer is unknown; the event
    /// still counts toward totals and the per-address table but not the
    /// pair matrix.
    pub fn record(&mut self, kind: AttrKind, line: u64, writer: u32, victim: u32) {
        self.totals[kind.index()] += 1;
        if writer == NO_THREAD || victim == NO_THREAD {
            self.unattributed += 1;
        } else {
            let key = (writer.min(victim), writer.max(victim));
            *self.pairs.entry(key).or_insert(0) += 1;
        }
        self.record_addr(kind, line, writer);
    }

    fn record_addr(&mut self, kind: AttrKind, line: u64, writer: u32) {
        if let Some(e) = self.addrs.get_mut(&line) {
            e.record(kind, writer);
            return;
        }
        if !self.sketch {
            let e = self.addrs.entry(line).or_insert_with(AddrEntry::new);
            e.record(kind, writer);
            if self.addrs.len() > self.cfg.exact_limit {
                self.convert_to_sketch();
            }
        } else if self.addrs.len() < self.cfg.sketch_k {
            let e = self.addrs.entry(line).or_insert_with(AddrEntry::new);
            e.record(kind, writer);
        } else {
            // Classic Misra–Gries: decrement every counter, drop the
            // zeros, and do not admit the new address.
            self.error_bound += 1;
            self.addrs.retain(|_, e| {
                e.count -= 1;
                e.count > 0
            });
        }
    }

    /// Exact→sketch conversion: keep the `sketch_k` largest counters
    /// (ties broken by address so the result is deterministic) and fold
    /// the largest dropped count into the error bound.
    fn convert_to_sketch(&mut self) {
        self.sketch = true;
        if self.addrs.len() <= self.cfg.sketch_k {
            return;
        }
        let mut order: Vec<(u64, u64)> = self
            .addrs
            .iter()
            .map(|(&line, e)| (line, e.count))
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut dropped_max = 0u64;
        for &(line, count) in &order[self.cfg.sketch_k..] {
            dropped_max = dropped_max.max(count);
            self.addrs.remove(&line);
        }
        self.error_bound += dropped_max;
    }

    /// Total events recorded for `kind`. Always exact.
    pub fn total(&self, kind: AttrKind) -> u64 {
        self.totals[kind.index()]
    }

    /// Total events recorded across all kinds. Always exact.
    pub fn total_events(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Events recorded without a known writer or victim thread.
    pub fn unattributed(&self) -> u64 {
        self.unattributed
    }

    /// `true` once the per-address table has converted to sketch mode.
    pub fn is_sketch(&self) -> bool {
        self.sketch
    }

    /// Addresses currently tracked (exact distinct count while in exact
    /// mode; at most `sketch_k` afterwards).
    pub fn tracked_addresses(&self) -> usize {
        self.addrs.len()
    }

    /// Worst-case undercount of any tracked address's `events` value
    /// (and upper bound on the true count of any untracked address).
    /// Zero in exact mode.
    pub fn error_bound(&self) -> u64 {
        self.error_bound
    }

    /// The sizing this collector was built with.
    pub fn config(&self) -> AttributionConfig {
        self.cfg
    }

    /// Exact (writer, victim) pair counts, keyed by the unordered pair
    /// `(min, max)`, sorted by descending count then ascending pair.
    pub fn pair_counts(&self) -> Vec<(u32, u32, u64)> {
        let mut v: Vec<(u32, u32, u64)> =
            self.pairs.iter().map(|(&(a, b), &c)| (a, b, c)).collect();
        v.sort_by(|x, y| y.2.cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));
        v
    }

    /// The top tracked addresses by event count (descending, ties by
    /// ascending address), at most `n` of them, with per-kind splits.
    /// Returned tuples are `(line, entry_events, [inv, upd, miss])`.
    pub fn top_addresses(&self, n: usize) -> Vec<(u64, u64, [u64; ATTR_KINDS])> {
        let mut v: Vec<(u64, u64, [u64; ATTR_KINDS])> = self
            .addrs
            .iter()
            .map(|(&line, e)| (line, e.events(), e.kinds))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Folds another collector into this one (sweep-level aggregation).
    ///
    /// Totals and the pair matrix add exactly. Per-address entries add
    /// counts and merge run histograms; open runs on both sides are
    /// flushed first, since cross-stream runs cannot be stitched once
    /// ordering is lost. If the combined table exceeds the sizing
    /// limits it re-sketches: entries beyond `sketch_k` are dropped and
    /// the (k+1)-th largest combined count joins the error bound, which
    /// also absorbs both inputs' bounds — the Misra–Gries merge rule.
    pub fn merge(&mut self, mut other: AttrCollector) {
        for (t, o) in self.totals.iter_mut().zip(other.totals.iter()) {
            *t += o;
        }
        self.unattributed += other.unattributed;
        for (k, c) in other.pairs {
            *self.pairs.entry(k).or_insert(0) += c;
        }
        self.error_bound += other.error_bound;
        for e in self.addrs.values_mut() {
            e.flush_run();
        }
        for (line, mut oe) in other.addrs.drain() {
            oe.flush_run();
            let e = self.addrs.entry(line).or_insert_with(AddrEntry::new);
            e.count += oe.count;
            for (k, o) in e.kinds.iter_mut().zip(oe.kinds.iter()) {
                *k += o;
            }
            e.runs.merge(&oe.runs);
        }
        self.sketch = self.sketch || other.sketch;
        let limit = if self.sketch {
            self.cfg.sketch_k
        } else {
            self.cfg.exact_limit
        };
        if self.addrs.len() > limit {
            self.convert_to_sketch();
        }
    }

    /// Serializes the collector as a `placesim-attribution-v1` report.
    /// `protocol` and `threads` describe the run; `top_n` caps the hot
    /// address list (totals and pairs are always complete).
    pub fn report_json(&self, protocol: &str, threads: usize, top_n: usize) -> String {
        let mut w = JsonWriter::new();
        self.write_report(&mut w, protocol, threads, top_n, true);
        w.finish()
    }

    fn write_report(
        &self,
        w: &mut JsonWriter,
        protocol: &str,
        threads: usize,
        top_n: usize,
        enabled: bool,
    ) {
        w.begin_object();
        w.field_str("schema", ATTRIBUTION_SCHEMA);
        w.field_bool("enabled", enabled);
        w.field_str("protocol", protocol);
        w.field_u64("threads", threads as u64);
        w.field_str("mode", if self.sketch { "sketch" } else { "exact" });
        w.field_u64("exact_limit", self.cfg.exact_limit as u64);
        w.field_u64("sketch_k", self.cfg.sketch_k as u64);
        w.field_u64("tracked_addresses", self.addrs.len() as u64);
        w.field_u64("error_bound", self.error_bound);
        w.key("totals");
        w.begin_object();
        w.field_u64("invalidations", self.total(AttrKind::Invalidation));
        w.field_u64("updates", self.total(AttrKind::Update));
        w.field_u64("coherence_misses", self.total(AttrKind::CoherenceMiss));
        w.field_u64("events", self.total_events());
        w.field_u64("unattributed", self.unattributed);
        w.end_object();
        w.key("top");
        w.begin_array();
        let mut order: Vec<(&u64, &AddrEntry)> = self.addrs.iter().collect();
        order.sort_by(|a, b| b.1.events().cmp(&a.1.events()).then(a.0.cmp(b.0)));
        for (&line, e) in order.into_iter().take(top_n) {
            // Present the histogram with the open run closed, without
            // mutating the collector.
            let mut runs = e.runs.clone();
            if e.run_len > 0 {
                runs.record(e.run_len);
            }
            w.begin_object();
            w.field_u64("line", line);
            w.field_u64("events", e.events());
            w.field_u64("count", e.count);
            w.field_u64("invalidations", e.kinds[AttrKind::Invalidation.index()]);
            w.field_u64("updates", e.kinds[AttrKind::Update.index()]);
            w.field_u64("coherence_misses", e.kinds[AttrKind::CoherenceMiss.index()]);
            w.key("runs");
            runs.write_json(w);
            w.end_object();
        }
        w.end_array();
        w.key("pairs");
        w.begin_array();
        for (a, b, c) in self.pair_counts() {
            w.begin_array();
            w.value_u64(u64::from(a));
            w.value_u64(u64::from(b));
            w.value_u64(c);
            w.end_array();
        }
        w.end_array();
        w.end_object();
    }

    /// An empty, `enabled: false` report for builds without the `obs`
    /// feature (attribution hooks compiled out).
    pub fn disabled_report_json(protocol: &str, threads: usize) -> String {
        let c = AttrCollector::default();
        let mut w = JsonWriter::new();
        c.write_report(&mut w, protocol, threads, 0, false);
        w.finish()
    }
}

/// One parsed hot-address row from a report's `top` array.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedAddr {
    /// Cache line address.
    pub line: u64,
    /// Attributed events on the line (sum of the per-kind splits).
    pub events: u64,
    /// Invalidations received by remote copies of this line.
    pub invalidations: u64,
    /// Dragon updates pushed to remote copies of this line.
    pub updates: u64,
    /// Coherence misses re-fetching this line.
    pub coherence_misses: u64,
    /// Completed sharing runs on the line.
    pub run_count: u64,
    /// Mean run length in events (0 when no runs).
    pub run_mean: f64,
    /// Longest run in events.
    pub run_max: u64,
}

/// A parsed `placesim-attribution-v1` document (rendering view; run
/// histograms are summarized, not reconstructed).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedAttribution {
    /// Whether the producing build had attribution compiled in.
    pub enabled: bool,
    /// Coherence protocol of the run.
    pub protocol: String,
    /// Thread count of the run.
    pub threads: u64,
    /// `"exact"` or `"sketch"`.
    pub mode: String,
    /// Addresses tracked when the report was written.
    pub tracked_addresses: u64,
    /// Misra–Gries error bound (0 in exact mode).
    pub error_bound: u64,
    /// Machine-wide invalidation total.
    pub invalidations: u64,
    /// Machine-wide Dragon update total.
    pub updates: u64,
    /// Machine-wide coherence-miss total.
    pub coherence_misses: u64,
    /// Events lacking a known (writer, victim) pair.
    pub unattributed: u64,
    /// Hot addresses, hottest first.
    pub top: Vec<ParsedAddr>,
    /// Thread-pair counts `(a, b, count)` with `a <= b`, hottest first.
    pub pairs: Vec<(u32, u32, u64)>,
}

impl ParsedAttribution {
    /// Sum of the per-kind totals.
    pub fn events(&self) -> u64 {
        self.invalidations + self.updates + self.coherence_misses
    }
}

fn req_u64(obj: &JsonValue, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn req_str(obj: &JsonValue, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

/// Strictly validates an attribution document: well-formed JSON (via
/// the crate's hardened parser), correct schema tag, internally
/// consistent totals. Returns the parsed view on success.
pub fn parse(s: &str) -> Result<ParsedAttribution, String> {
    let doc = json::parse(s)?;
    let schema = req_str(&doc, "schema")?;
    if schema != ATTRIBUTION_SCHEMA {
        return Err(format!(
            "schema mismatch: expected `{ATTRIBUTION_SCHEMA}`, found `{schema}`"
        ));
    }
    let enabled = doc
        .get("enabled")
        .and_then(JsonValue::as_bool)
        .ok_or("missing or non-boolean field `enabled`")?;
    let protocol = req_str(&doc, "protocol")?;
    let threads = req_u64(&doc, "threads")?;
    let mode = req_str(&doc, "mode")?;
    if mode != "exact" && mode != "sketch" {
        return Err(format!("invalid mode `{mode}`"));
    }
    let tracked_addresses = req_u64(&doc, "tracked_addresses")?;
    let error_bound = req_u64(&doc, "error_bound")?;
    if mode == "exact" && error_bound != 0 {
        return Err("exact mode must have error_bound 0".into());
    }
    let totals = doc.get("totals").ok_or("missing `totals` object")?;
    let invalidations = req_u64(totals, "invalidations")?;
    let updates = req_u64(totals, "updates")?;
    let coherence_misses = req_u64(totals, "coherence_misses")?;
    let events = req_u64(totals, "events")?;
    let unattributed = req_u64(totals, "unattributed")?;
    if events != invalidations + updates + coherence_misses {
        return Err("totals.events does not equal the per-kind sum".into());
    }
    if unattributed > events {
        return Err("totals.unattributed exceeds totals.events".into());
    }

    let top_raw = doc
        .get("top")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array field `top`")?;
    let mut top = Vec::with_capacity(top_raw.len());
    let mut prev_events = u64::MAX;
    for row in top_raw {
        let line = req_u64(row, "line")?;
        let ev = req_u64(row, "events")?;
        let inv = req_u64(row, "invalidations")?;
        let upd = req_u64(row, "updates")?;
        let miss = req_u64(row, "coherence_misses")?;
        if ev != inv + upd + miss {
            return Err(format!(
                "top[{line:#x}].events does not equal its per-kind sum"
            ));
        }
        if ev > prev_events {
            return Err("top array is not sorted by descending events".into());
        }
        prev_events = ev;
        let runs = row.get("runs").ok_or("missing `runs` object in top row")?;
        let run_count = req_u64(runs, "count")?;
        let run_max = req_u64(runs, "max")?;
        let run_mean = runs
            .get("mean")
            .and_then(JsonValue::as_f64)
            .ok_or("missing or non-numeric `runs.mean`")?;
        top.push(ParsedAddr {
            line,
            events: ev,
            invalidations: inv,
            updates: upd,
            coherence_misses: miss,
            run_count,
            run_mean,
            run_max,
        });
    }

    let pairs_raw = doc
        .get("pairs")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array field `pairs`")?;
    let mut pairs = Vec::with_capacity(pairs_raw.len());
    let mut pair_sum: u64 = 0;
    let mut seen: HashMap<(u32, u32), ()> = HashMap::new();
    for row in pairs_raw {
        let cells = row
            .as_array()
            .ok_or("pairs rows must be [a, b, count] arrays")?;
        if cells.len() != 3 {
            return Err("pairs rows must have exactly three elements".into());
        }
        let a = cells[0]
            .as_u64()
            .filter(|&v| v <= u64::from(u32::MAX))
            .ok_or("pair thread id out of range")? as u32;
        let b = cells[1]
            .as_u64()
            .filter(|&v| v <= u64::from(u32::MAX))
            .ok_or("pair thread id out of range")? as u32;
        let c = cells[2].as_u64().ok_or("pair count must be an integer")?;
        if a > b {
            return Err("pairs must be ordered (a <= b)".into());
        }
        if seen.insert((a, b), ()).is_some() {
            return Err("duplicate thread pair".into());
        }
        pair_sum = pair_sum.checked_add(c).ok_or("pair counts overflow u64")?;
        pairs.push((a, b, c));
    }
    if pair_sum + unattributed != events {
        return Err("pair counts plus unattributed do not reconcile with totals.events".into());
    }

    Ok(ParsedAttribution {
        enabled,
        protocol,
        threads,
        mode,
        tracked_addresses,
        error_bound,
        invalidations,
        updates,
        coherence_misses,
        unattributed,
        top,
        pairs,
    })
}

/// [`parse`] discarding the parsed view: `Ok(())` iff the document is a
/// valid `placesim-attribution-v1` report.
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AttributionConfig {
        AttributionConfig {
            exact_limit: 4,
            sketch_k: 2,
        }
    }

    #[test]
    fn exact_mode_counts_are_exact() {
        let mut c = AttrCollector::default();
        c.record(AttrKind::Invalidation, 0x40, 0, 1);
        c.record(AttrKind::Invalidation, 0x40, 0, 2);
        c.record(AttrKind::CoherenceMiss, 0x40, 0, 2);
        c.record(AttrKind::Update, 0x80, 3, 1);
        assert!(!c.is_sketch());
        assert_eq!(c.error_bound(), 0);
        assert_eq!(c.total(AttrKind::Invalidation), 2);
        assert_eq!(c.total(AttrKind::Update), 1);
        assert_eq!(c.total(AttrKind::CoherenceMiss), 1);
        assert_eq!(c.total_events(), 4);
        assert_eq!(c.tracked_addresses(), 2);
        let top = c.top_addresses(10);
        assert_eq!(top[0], (0x40, 3, [2, 0, 1]));
        assert_eq!(top[1], (0x80, 1, [0, 1, 0]));
        let pairs = c.pair_counts();
        assert_eq!(pairs, vec![(0, 2, 2), (0, 1, 1), (1, 3, 1)]);
    }

    #[test]
    fn runs_split_on_writer_change() {
        let mut c = AttrCollector::default();
        for w in [0, 0, 0, 1, 1, 0] {
            c.record(AttrKind::Invalidation, 0x40, w, 7);
        }
        let s = c.report_json("wi", 8, 10);
        let parsed = parse(&s).unwrap();
        // Runs: [3 (T0), 2 (T1), 1 (T0, open — closed in the report)].
        assert_eq!(parsed.top[0].run_count, 3);
        assert_eq!(parsed.top[0].run_max, 3);
        assert!((parsed.top[0].run_mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn conversion_keeps_heavy_hitters() {
        let mut c = AttrCollector::new(small());
        // Lines 1 and 2 are heavy; 3..=6 are singletons that push the
        // table past exact_limit = 4.
        for _ in 0..10 {
            c.record(AttrKind::Invalidation, 1, 0, 1);
            c.record(AttrKind::Invalidation, 2, 0, 1);
        }
        for line in 3..=6 {
            c.record(AttrKind::Invalidation, line, 0, 1);
        }
        assert!(c.is_sketch());
        assert!(c.tracked_addresses() <= small().sketch_k);
        let top: Vec<u64> = c.top_addresses(2).iter().map(|t| t.0).collect();
        assert_eq!(top, vec![1, 2]);
        // Dropped entries were singletons → bound 1 (plus any
        // decrements from the remaining inserts).
        assert!(c.error_bound() >= 1);
        // Misra–Gries guarantee: tracked count within bound of truth.
        let tracked = c.top_addresses(1)[0].1;
        assert!(tracked + c.error_bound() >= 10);
        // Totals stay exact regardless of mode.
        assert_eq!(c.total(AttrKind::Invalidation), 24);
    }

    #[test]
    fn sketch_decrement_never_admits_light_tail() {
        let cfg = AttributionConfig {
            exact_limit: 1,
            sketch_k: 2,
        };
        let mut c = AttrCollector::new(cfg);
        for _ in 0..100 {
            c.record(AttrKind::Invalidation, 1, 0, 1);
        }
        // A long tail of distinct singletons must not displace line 1.
        for line in 100..200 {
            c.record(AttrKind::Invalidation, line, 0, 1);
        }
        assert!(c.is_sketch());
        let top = c.top_addresses(1);
        assert_eq!(top[0].0, 1);
        assert!(c.error_bound() <= 101);
    }

    #[test]
    fn merge_is_exact_when_both_sides_are() {
        let mut a = AttrCollector::default();
        let mut b = AttrCollector::default();
        a.record(AttrKind::Invalidation, 1, 0, 1);
        a.record(AttrKind::Update, 2, 2, 3);
        b.record(AttrKind::Invalidation, 1, 1, 0);
        b.record(AttrKind::CoherenceMiss, 3, 0, 2);
        a.merge(b);
        assert_eq!(a.total_events(), 4);
        assert_eq!(a.tracked_addresses(), 3);
        assert_eq!(a.error_bound(), 0);
        let pairs = a.pair_counts();
        assert_eq!(pairs[0], (0, 1, 2));
        let s = a.report_json("wi", 4, 10);
        parse(&s).unwrap();
    }

    #[test]
    fn merge_resketches_past_capacity() {
        let cfg = AttributionConfig {
            exact_limit: 100,
            sketch_k: 2,
        };
        let mut a = AttrCollector::new(cfg);
        let mut b = AttrCollector::new(cfg);
        for _ in 0..5 {
            a.record(AttrKind::Invalidation, 1, 0, 1);
            b.record(AttrKind::Invalidation, 2, 0, 1);
        }
        a.record(AttrKind::Invalidation, 3, 0, 1);
        // Force sketch mode on one side so the merged table re-sketches.
        a.convert_to_sketch();
        b.convert_to_sketch();
        a.merge(b);
        assert!(a.is_sketch());
        assert!(a.tracked_addresses() <= 2);
        let top: Vec<u64> = a.top_addresses(2).iter().map(|t| t.0).collect();
        assert_eq!(top, vec![1, 2]);
        assert_eq!(a.total_events(), 11);
    }

    #[test]
    fn report_roundtrips_through_strict_parser() {
        let mut c = AttrCollector::default();
        c.record(AttrKind::Invalidation, 0x1c0, 0, 5);
        c.record(AttrKind::CoherenceMiss, 0x1c0, 0, 5);
        let s = c.report_json("mesi", 6, 10);
        assert!(json::balanced(&s));
        let p = parse(&s).unwrap();
        assert!(p.enabled);
        assert_eq!(p.protocol, "mesi");
        assert_eq!(p.threads, 6);
        assert_eq!(p.mode, "exact");
        assert_eq!(p.events(), 2);
        assert_eq!(p.top.len(), 1);
        assert_eq!(p.pairs, vec![(0, 5, 2)]);
    }

    #[test]
    fn disabled_report_is_valid_and_flagged() {
        let s = AttrCollector::disabled_report_json("dragon", 3);
        let p = parse(&s).unwrap();
        assert!(!p.enabled);
        assert_eq!(p.events(), 0);
        assert!(p.top.is_empty());
    }

    #[test]
    fn parse_rejects_hostile_documents() {
        // Wrong schema.
        let mut c = AttrCollector::default();
        let good = c.report_json("wi", 2, 10);
        let bad = good.replace(ATTRIBUTION_SCHEMA, "placesim-attribution-v0");
        assert!(parse(&bad).is_err());
        // Inconsistent totals.
        c.record(AttrKind::Invalidation, 1, 0, 1);
        let good = c.report_json("wi", 2, 10);
        let bad = good.replace("\"events\": 1", "\"events\": 2");
        assert!(parse(&bad).is_err());
        // Unsorted pairs / duplicate pairs / trailing garbage.
        assert!(parse(&format!("{good} ")).is_ok());
        assert!(parse(&format!("{good}x")).is_err());
        assert!(parse("{}").is_err());
        assert!(parse("not json").is_err());
    }
}
