//! Measures end-to-end pipeline throughput (references per second) for
//! the fused front end against the retained reference paths and writes
//! `BENCH_pipeline.json` at the repository root.
//!
//! Two stage groups are timed, each at scale 0.1 and 1.0 on the
//! 127-thread Gauss (medium-grain) configuration:
//!
//! * `frontend` — generate → sharing profile → placement with the full
//!   twelve-algorithm clustering set on 16 processors. The fused arm
//!   uses the skeleton emitter's free access profile
//!   ([`generate_with_access`]), the grouped sharded profile build
//!   (`measure_access`) and the incremental cluster-score cache
//!   ([`ScoreMode::Cached`]); the reference arm re-runs the serial
//!   emitter, the trace-rescanning profile build and fresh per-merge
//!   rescoring. Differential proptests in `placesim-workloads` and
//!   `placesim-placement` pin both arms to bit-identical sharing
//!   matrices and identical placements.
//! * `pipeline` — the same front end followed by a full simulation of
//!   the ShareRefsLb placement (batched engine vs. the per-reference
//!   reference engine).
//!
//! A third group, `streaming`, exercises the out-of-core path: the
//! Gauss trace is generated straight to a v3 streaming file (never
//! materialized in memory), then profiled and placed from chunk
//! iterators under the [`SpillBudget`] resident-address cap. The
//! section records generation and profiling throughput alongside the
//! peak bytes live during the bounded-memory stage, measured by a
//! tracking allocator wrapping the system allocator.
//!
//! The emitted JSON follows the `BENCH_engine.json` schema and is
//! validated before the process exits (non-zero on malformed output),
//! so CI can run this binary at a tiny `PLACESIM_SCALE` as a release
//! smoke test.
//!
//! Usage: `cargo run --release -p placesim-bench --bin bench_pipeline`.

use placesim::manifest::{ManifestEntry, RunManifest};
use placesim_analysis::{SharingAnalysis, SpillBudget};
use placesim_machine::{reference as machine_reference, simulate, ArchConfig};
use placesim_placement::{
    thread_lengths, PlacementAlgorithm, PlacementInputs, PlacementMap, ScoreMode,
};
use placesim_trace::stream::FileReader;
use placesim_workloads::{
    generate_streamed, generate_with_access, reference, spec, AppSpec, GenOptions,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Wraps the system allocator to track live and peak heap bytes, so the
/// `streaming` section can report the memory ceiling of the out-of-core
/// stage as a measured number rather than a claim.
struct TrackingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let live = LIVE.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Resets the peak-bytes watermark to the current live total.
fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Every clustering algorithm the paper's tables sweep (CoherenceTraffic
/// needs a machine probe and Random/LoadBal are trivial, so none of the
/// three belongs in a front-end timing).
const ALGOS: [PlacementAlgorithm; 12] = [
    PlacementAlgorithm::ShareRefs,
    PlacementAlgorithm::ShareRefsLb,
    PlacementAlgorithm::ShareAddr,
    PlacementAlgorithm::ShareAddrLb,
    PlacementAlgorithm::MinPriv,
    PlacementAlgorithm::MinPrivLb,
    PlacementAlgorithm::MinInvs,
    PlacementAlgorithm::MinInvsLb,
    PlacementAlgorithm::MaxWrites,
    PlacementAlgorithm::MaxWritesLb,
    PlacementAlgorithm::MinShare,
    PlacementAlgorithm::MinShareLb,
];

const PROCESSORS: usize = 16;
const SAMPLES: usize = 9;

/// Median wall-clock seconds per run over `samples` timed runs (after
/// one warmup that touches caches and faults pages).
fn median_secs(samples: usize, mut run: impl FnMut()) -> f64 {
    run();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

/// The fused front end: skeleton emitter + grouped profile + cached
/// clustering. Returns the ShareRefsLb map so the pipeline arm can
/// extend the run with a simulation.
fn frontend_fused(app: &AppSpec, opts: &GenOptions) -> PlacementMap {
    let (prog, access) = generate_with_access(app, opts);
    let sharing = SharingAnalysis::measure_access(&access);
    drop(access);
    let lengths = thread_lengths(&prog);
    let inputs = PlacementInputs::new(&sharing, &lengths).with_seed(opts.seed);
    let mut keep = None;
    for algo in ALGOS {
        let map = algo
            .place_with_mode(&inputs, PROCESSORS, ScoreMode::Cached)
            .expect("placement");
        if algo == PlacementAlgorithm::ShareRefsLb {
            keep = Some(map);
        }
    }
    keep.expect("ShareRefsLb is in the algorithm set")
}

/// The retained reference front end: serial emitter + trace-rescanning
/// profile + fresh rescoring on every cluster merge.
fn frontend_reference(app: &AppSpec, opts: &GenOptions) -> PlacementMap {
    let prog = reference::generate(app, opts);
    let sharing = SharingAnalysis::measure_reference(&prog);
    let lengths = thread_lengths(&prog);
    let inputs = PlacementInputs::new(&sharing, &lengths).with_seed(opts.seed);
    let mut keep = None;
    for algo in ALGOS {
        let map = algo
            .place_with_mode(&inputs, PROCESSORS, ScoreMode::Fresh)
            .expect("placement");
        if algo == PlacementAlgorithm::ShareRefsLb {
            keep = Some(map);
        }
    }
    keep.expect("ShareRefsLb is in the algorithm set")
}

/// Runs the out-of-core arm: stream-generate a large Gauss trace to a
/// v3 file, then profile and place it from chunk iterators under the
/// resident-address spill budget, reporting throughput and the peak
/// heap bytes live during the bounded-memory stage.
fn streaming_section(app: &AppSpec, mult: f64) -> String {
    // Scale 34 puts Gauss past a billion references at mult 1.0 — a
    // trace far larger than the resident budget allows in memory.
    let scale = 34.0 * mult;
    let opts = GenOptions { scale, seed: 1994 };
    let budget = SpillBudget::from_env();
    let path = std::env::temp_dir().join(format!(
        "placesim-bench-stream-{}.trace",
        std::process::id()
    ));

    let start = Instant::now();
    let file = std::fs::File::create(&path).expect("create streaming trace");
    let summary =
        generate_streamed(app, &opts, std::io::BufWriter::new(file)).expect("stream generation");
    let gen_secs = start.elapsed().as_secs_f64();
    let refs = summary.total_refs as f64;

    reset_peak();
    let start = Instant::now();
    let reader = FileReader::open(&path).expect("open streaming trace");
    let sharing = SharingAnalysis::measure_streamed(&reader, &budget).expect("streamed profile");
    let lengths = reader.instr_lengths();
    let inputs = PlacementInputs::new(&sharing, &lengths).with_seed(opts.seed);
    let map = PlacementAlgorithm::ShareRefsLb
        .place_with_mode(&inputs, PROCESSORS, ScoreMode::Cached)
        .expect("placement");
    let profile_secs = start.elapsed().as_secs_f64();
    let peak = peak_bytes();
    std::fs::remove_file(&path).ok();

    println!(
        "gauss-streaming-{scale:<6} {:>12.0} refs/s gen | {:>12.0} refs/s profile+place | peak {:.1} MiB, {} clusters",
        refs / gen_secs,
        refs / profile_secs,
        peak as f64 / (1024.0 * 1024.0),
        map.processor_count(),
    );
    format!(
        concat!(
            "  \"streaming\": {{\n",
            "    \"name\": \"gauss-streaming-{}\",\n",
            "    \"detail\": \"stream-generate v3 \\u2192 out-of-core profile \\u2192 ShareRefsLb placement under a {}-address resident budget\",\n",
            "    \"trace_refs\": {},\n",
            "    \"trace_bytes\": {},\n",
            "    \"gen_refs_per_sec\": {:.0},\n",
            "    \"profile_refs_per_sec\": {:.0},\n",
            "    \"peak_bytes\": {},\n",
            "    \"budget_resident_addrs\": {}\n",
            "  }},"
        ),
        scale,
        budget.max_resident_addrs(),
        summary.total_refs,
        summary.bytes_written,
        refs / gen_secs,
        refs / profile_secs,
        peak,
        budget.max_resident_addrs(),
    )
}

/// Extracts every numeric value stored under `"key":` in `json`.
fn field_values(json: &str, key: &str) -> Vec<f64> {
    let pat = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find(&pat) {
        rest = &rest[i + pat.len()..];
        let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Checks the emitted document against the `BENCH_engine.json` schema:
/// required top-level keys, balanced braces, `scenarios` rows carrying
/// one finite positive value for each numeric field, and a `streaming`
/// section with one finite positive value per out-of-core metric.
fn validate_bench_json(json: &str, scenarios: usize) -> Result<(), String> {
    for key in [
        "\"benchmark\"",
        "\"unit\"",
        "\"engines\"",
        "\"fused\"",
        "\"reference\"",
        "\"streaming\"",
        "\"scenarios\"",
    ] {
        if !json.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    if json.matches('{').count() != json.matches('}').count() {
        return Err("unbalanced braces".to_string());
    }
    let rows = json.matches("\"scenario\":").count();
    if rows != scenarios {
        return Err(format!("expected {scenarios} scenario rows, found {rows}"));
    }
    if json.matches("\"note\":").count() != scenarios {
        return Err("every scenario row needs a note".to_string());
    }
    for key in [
        "total_refs",
        "fused_refs_per_sec",
        "reference_refs_per_sec",
        "speedup",
    ] {
        let vals = field_values(json, key);
        if vals.len() != scenarios {
            return Err(format!(
                "expected {scenarios} values under \"{key}\", found {}",
                vals.len()
            ));
        }
        if let Some(bad) = vals.iter().find(|v| !v.is_finite() || **v <= 0.0) {
            return Err(format!("non-positive value {bad} under \"{key}\""));
        }
    }
    for key in [
        "trace_refs",
        "trace_bytes",
        "gen_refs_per_sec",
        "profile_refs_per_sec",
        "peak_bytes",
        "budget_resident_addrs",
    ] {
        let vals = field_values(json, key);
        if vals.len() != 1 {
            return Err(format!(
                "expected one streaming value under \"{key}\", found {}",
                vals.len()
            ));
        }
        if !vals[0].is_finite() || vals[0] <= 0.0 {
            return Err(format!("non-positive value {} under \"{key}\"", vals[0]));
        }
    }
    Ok(())
}

fn main() {
    // PLACESIM_SCALE multiplies both scenario scales so CI can smoke the
    // full binary in seconds (e.g. 0.02 runs at 0.002 and 0.02).
    let mult = placesim::scale_from_env(1.0);
    let app = spec("gauss").expect("known app");
    let config = ArchConfig::paper_default()
        .with_cache_size(app.cache_bytes())
        .expect("suite cache sizes are powers of two");

    let wall = Instant::now();
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for (label, base_scale) in [("0.1", 0.1), ("1.0", 1.0)] {
        let scale = base_scale * mult;
        let opts = GenOptions { scale, seed: 1994 };
        let total_refs = reference::generate(&app, &opts).total_refs();
        let refs = total_refs as f64;

        // One untimed end-to-end run feeds the manifest's summary row.
        {
            let map = frontend_fused(&app, &opts);
            let (prog, _) = generate_with_access(&app, &opts);
            let stats = simulate(&prog, &map, &config).expect("simulation");
            entries.push(ManifestEntry::from_stats(
                &format!("SHARE-REFS-LB-{label}"),
                PROCESSORS,
                &stats,
            ));
        }

        let fused = median_secs(SAMPLES, || drop(frontend_fused(&app, &opts)));
        let refr = median_secs(SAMPLES, || drop(frontend_reference(&app, &opts)));
        push_row(
            &mut rows,
            format!("gauss-frontend-{label}"),
            format!(
                "generate \u{2192} profile \u{2192} place (12 algorithms, {PROCESSORS} processors) at scale {scale}"
            ),
            total_refs,
            refs / fused,
            refs / refr,
        );

        let fused = median_secs(SAMPLES, || {
            let map = frontend_fused(&app, &opts);
            let (prog, _) = generate_with_access(&app, &opts);
            drop(simulate(&prog, &map, &config).expect("simulation"));
        });
        let refr = median_secs(SAMPLES, || {
            let map = frontend_reference(&app, &opts);
            let prog = reference::generate(&app, &opts);
            drop(machine_reference::simulate(&prog, &map, &config).expect("simulation"));
        });
        push_row(
            &mut rows,
            format!("gauss-pipeline-{label}"),
            format!("front end + full simulation of the ShareRefsLb placement at scale {scale}"),
            total_refs,
            refs / fused,
            refs / refr,
        );
    }

    let streaming = streaming_section(&app, mult);

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"pipeline-throughput\",\n",
            "  \"unit\": \"references per second, median of {} runs\",\n",
            "  \"engines\": {{\n",
            "    \"fused\": \"skeleton emitter + grouped sharded profile + incremental score cache\",\n",
            "    \"reference\": \"serial emitter + trace rescan + fresh per-merge rescoring\"\n",
            "  }},\n",
            "{}\n",
            "  \"scenarios\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SAMPLES,
        streaming,
        rows.join(",\n")
    );
    if let Err(e) = validate_bench_json(&json, rows.len()) {
        eprintln!("generated document fails schema validation: {e}");
        std::process::exit(1);
    }
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(out, &json).expect("write BENCH_pipeline.json");
    let written = std::fs::read_to_string(out).expect("re-read BENCH_pipeline.json");
    if let Err(e) = validate_bench_json(&written, rows.len()) {
        eprintln!("written document fails schema validation: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    let mut manifest = RunManifest::new("bench_pipeline", "gauss", &config);
    manifest.scale = Some(mult);
    manifest.seed = Some(1994);
    manifest.wall_secs = wall.elapsed().as_secs_f64();
    manifest.entries = entries;
    let manifest_out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_pipeline.manifest.json"
    );
    manifest
        .write(std::path::Path::new(manifest_out))
        .expect("write BENCH_pipeline.manifest.json");
    println!("wrote {manifest_out}");
}

fn push_row(
    rows: &mut Vec<String>,
    name: String,
    note: String,
    total_refs: u64,
    fused_rps: f64,
    reference_rps: f64,
) {
    let speedup = fused_rps / reference_rps;
    println!(
        "{:<20} {:>12.0} refs/s fused | {:>12.0} refs/s reference | {:.2}x",
        name, fused_rps, reference_rps, speedup
    );
    rows.push(format!(
        concat!(
            "    {{\n",
            "      \"scenario\": \"{}\",\n",
            "      \"note\": \"{}\",\n",
            "      \"total_refs\": {},\n",
            "      \"fused_refs_per_sec\": {:.0},\n",
            "      \"reference_refs_per_sec\": {:.0},\n",
            "      \"speedup\": {:.3}\n",
            "    }}"
        ),
        name, note, total_refs, fused_rps, reference_rps, speedup
    ));
}

#[cfg(test)]
mod tests {
    use super::{field_values, validate_bench_json};

    fn doc(speedup: &str) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"pipeline-throughput\",\n",
                "  \"unit\": \"references per second, median of 9 runs\",\n",
                "  \"engines\": {{ \"fused\": \"a\", \"reference\": \"b\" }},\n",
                "  \"streaming\": {{\n",
                "    \"name\": \"gauss-streaming-30\",\n",
                "    \"detail\": \"d\",\n",
                "    \"trace_refs\": 1000,\n",
                "    \"trace_bytes\": 500,\n",
                "    \"gen_refs_per_sec\": 10,\n",
                "    \"profile_refs_per_sec\": 20,\n",
                "    \"peak_bytes\": 4096,\n",
                "    \"budget_resident_addrs\": 8\n",
                "  }},\n",
                "  \"scenarios\": [\n",
                "    {{\n",
                "      \"scenario\": \"gauss-frontend-1.0\",\n",
                "      \"note\": \"x\",\n",
                "      \"total_refs\": 100,\n",
                "      \"fused_refs_per_sec\": 200,\n",
                "      \"reference_refs_per_sec\": 100,\n",
                "      \"speedup\": {}\n",
                "    }}\n",
                "  ]\n",
                "}}\n"
            ),
            speedup
        )
    }

    #[test]
    fn accepts_well_formed_document() {
        assert_eq!(validate_bench_json(&doc("2.000"), 1), Ok(()));
    }

    #[test]
    fn rejects_missing_keys_and_row_miscounts() {
        let d = doc("2.000");
        assert!(validate_bench_json(&d.replace("\"unit\"", "\"u\""), 1).is_err());
        assert!(validate_bench_json(&d, 2).is_err());
        assert!(validate_bench_json(&d.replace("\"note\"", "\"n\""), 1).is_err());
    }

    #[test]
    fn rejects_non_positive_and_malformed_values() {
        assert!(validate_bench_json(&doc("0"), 1).is_err());
        assert!(validate_bench_json(&doc("NaN"), 1).is_err());
        let d = doc("2.000").replace("\"total_refs\": 100,", "\"total_refs\": oops,");
        assert!(validate_bench_json(&d, 1).is_err());
    }

    #[test]
    fn rejects_missing_or_bad_streaming_section() {
        let d = doc("2.000");
        assert!(validate_bench_json(&d.replace("\"streaming\"", "\"s\""), 1).is_err());
        assert!(
            validate_bench_json(&d.replace("\"peak_bytes\": 4096", "\"peak_bytes\": 0"), 1)
                .is_err()
        );
        assert!(
            validate_bench_json(&d.replace("\"trace_refs\": 1000,\n", ""), 1).is_err(),
            "a streaming section without trace_refs must fail"
        );
    }

    #[test]
    fn rejects_unbalanced_braces() {
        let d = doc("2.000");
        assert!(validate_bench_json(&d[..d.len() - 3], 1).is_err());
    }

    #[test]
    fn field_extraction_finds_each_numeric_value() {
        let d = doc("2.000");
        assert_eq!(field_values(&d, "total_refs"), vec![100.0]);
        assert_eq!(field_values(&d, "speedup"), vec![2.0]);
        assert!(field_values(&d, "absent").is_empty());
    }
}
