//! Work-sharded parallel simulation engine.
//!
//! Partitions the simulated processors across a fixed pool of worker
//! threads and advances them through conservative *time windows*. The
//! results are **bit-identical** to the serial batched engine in
//! [`crate::engine`] — same [`SimStats`] down to every counter, same
//! coherence-traffic matrix — enforced by differential property tests
//! at 1/2/4/8 worker threads (`tests/parallel_differential.rs`).
//!
//! # Execution model (DESIGN.md §10 has the full protocol)
//!
//! The serial engine interleaves processors through a `(time, processor)`
//! event queue; a reference's only *global* effects are its directory
//! transaction and the invalidations/downgrades it sends. The parallel
//! engine exploits that the vast majority of references are cache hits
//! with *no* global effects:
//!
//! 1. **Window execution (parallel).** Each window covers event keys in
//!    `[W, bound)`. Every processor with a pending event inside the
//!    window is snapshotted and shipped (by move) to a worker, which
//!    advances it *optimistically* to the window bound using only its
//!    own cache, logging every globally-visible action (miss, upgrade,
//!    barrier arrival) and applying a list of *foreign events*
//!    (invalidations/downgrades from other shards) in exact
//!    `(time, processor)` key order.
//! 2. **Validation (serial, cheap).** The coordinator merges all action
//!    logs in `(time, processor)` order — the serial engine's exact pop
//!    order — and replays them against the (journaled) directory. This
//!    yields the foreign events each processor *should* have seen. A
//!    processor whose consumed list is a prefix of the computed one and
//!    whose remaining events *commute* (it never touched the event's
//!    cache set at or after the event key) is clean; otherwise it is
//!    restored from its snapshot and re-executed with the computed
//!    list. The first divergent key strictly advances each iteration,
//!    so the fixed point is reached in finitely many passes (typically
//!    one: cross-window sharing is rare at paper scales).
//! 3. **Barriers.** A window in which the `participants`-th barrier
//!    arrival occurs at key `(t, p)` is re-run truncated to bound
//!    `(t, p + 1)`, with the arriving processor told to perform the
//!    serial engine's release (wake its own waiting contexts) in-line;
//!    all other processors' waits, wakes and park re-arms are applied
//!    by the coordinator between windows, exactly mirroring the serial
//!    release loop.
//!
//! # Memory ordering
//!
//! Shard state moves through `std::sync::mpsc` channels with full move
//! semantics: a `ShardProc` is owned by exactly one thread at any time,
//! so there are no shared mutable locations at all and therefore no
//! data races by construction. The channel's internal release/acquire
//! pair guarantees the receiver observes every write the sender made
//! before `send` (idle workers park futex-style inside `recv`). The
//! directory is only ever touched by the coordinator thread.
//!
//! # Serial fallbacks
//!
//! Configurations that couple processors *between* the window boundaries
//! the protocol relies on are delegated to the serial engine unchanged:
//! `memory_occupancy > 0` (a single global memory channel serializes
//! every miss's ready time), `upgrade_stalls` (an upgrade's latency
//! depends on remote sharer state at issue time), and any coherence
//! protocol other than the paper's write-invalidate — MESI's
//! exclusive-clean fill decision and Dragon's update fan-out both need
//! the global directory at issue time, which shard-local speculation
//! cannot provide (and `ForeignKind` has no update message). Dragon and
//! MESI stay serial until a cross-shard update mailbox is validated.
//! `obs` instrumentation (`simulate_observed`/`simulate_traced`) also
//! stays serial — timeline ordering within a window is not preserved.
//!
//! # Attribution
//!
//! Coherence-traffic attribution ([`simulate_attributed_parallel`])
//! *does* run sharded: every attributable event — an invalidation
//! landing in a victim cache, a coherence miss paying for one — is
//! buffered per shard as an [`AttrEvt`] keyed by the issuing action's
//! `(time, processor)` plus an intra-action sequence number (0 = the
//! miss record, `1 + victim` = each invalidation receive, matching the
//! serial engine's emission order exactly). Buffers follow the action
//! log's lifecycle — cleared on every (re-)execution — so rolled-back
//! speculation never leaks events. At window commit the coordinator
//! drains all buffers, sorts by `(t, from, seq)`, and feeds the
//! collector; the resulting [`placesim_obs::AttrCollector`] is
//! bit-identical to the serial engine's (run histograms and sketch
//! evictions included), enforced by `tests/attribution.rs`.

use crate::cache::{Access, LineState, ProcessorCache};
use crate::config::ArchConfig;
use crate::directory::Directory;
use crate::engine::{
    build_processors, owner_u32, run, validate, Processor, SimError, ATTR_NO_THREAD, NO_EVENT,
};
use crate::obs::EngineObs;
use crate::protocol::Protocol;
use crate::stats::{MissKind, SimStats};
use placesim_analysis::SymMatrix;
use placesim_obs::{AttrCollector, AttrKind, AttributionConfig};
use placesim_placement::{PlacementMap, ProcessorId};
use placesim_trace::par::CancelToken;
use placesim_trace::ProgramTrace;
use placesim_trace::{MemRef, RefKind, ThreadId};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;

/// Tuning knobs for the parallel engine.
#[derive(Debug, Clone)]
pub struct ParConfig {
    /// Worker threads to shard the simulated processors across. The
    /// effective pool is `min(threads, simulated processors)`; 1 runs
    /// the windowed engine inline (no threads spawned).
    pub threads: usize,
    /// Fixed window length in cycles, or 0 for the adaptive default
    /// (start near `4 × (latency + switch)`, grow ×2 on clean windows,
    /// halve when validation iterates). Tests pin tiny windows to force
    /// boundary crossings.
    pub window: u64,
}

impl ParConfig {
    /// Adaptive-window configuration with `threads` workers.
    pub fn new(threads: usize) -> Self {
        ParConfig { threads, window: 0 }
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig::new(1)
    }
}

/// [`crate::simulate`] on the work-sharded parallel engine.
///
/// Bit-identical to the serial engine for every input (differentially
/// tested); only wall-clock time changes with `threads`.
///
/// # Errors
///
/// Same as [`crate::simulate`].
pub fn simulate_parallel(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    threads: usize,
) -> Result<SimStats, SimError> {
    let (stats, _) = run_parallel(
        prog,
        map,
        config,
        false,
        &ParConfig::new(threads),
        &mut EngineObs::disabled(),
    )?;
    Ok(stats)
}

/// [`crate::simulate_attributed`] on the parallel engine: same
/// [`SimStats`] *and* the same [`AttrCollector`] bit-for-bit (per-shard
/// event buffers are replayed in serial emission order at each window
/// commit, so even order-sensitive state — sharing-run histograms,
/// sketch evictions — matches). Configurations the parallel engine
/// cannot shard (Dragon, MESI, occupancy/stall timing) fall back to the
/// serial attributed engine transparently.
///
/// Without the `obs` feature the collector comes back empty (and
/// [`crate::attribution_enabled`] reports `false`).
///
/// # Errors
///
/// Same as [`crate::simulate`].
pub fn simulate_attributed_parallel(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    acfg: AttributionConfig,
    threads: usize,
) -> Result<(SimStats, AttrCollector), SimError> {
    simulate_attributed_configured(prog, map, config, acfg, &ParConfig::new(threads))
}

/// [`simulate_attributed_parallel`] with explicit [`ParConfig`] (fixed
/// windows for boundary-edge tests).
///
/// # Errors
///
/// Same as [`crate::simulate`].
pub fn simulate_attributed_configured(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    acfg: AttributionConfig,
    par: &ParConfig,
) -> Result<(SimStats, AttrCollector), SimError> {
    let mut obs = EngineObs::attributed(acfg);
    let (stats, _) = run_parallel(prog, map, config, false, par, &mut obs)?;
    let (_, _, attr) = obs.finish_all();
    Ok((stats, attr.unwrap_or_else(|| AttrCollector::new(acfg))))
}

/// [`crate::simulate_with_traffic`] on the parallel engine.
///
/// # Errors
///
/// Same as [`crate::simulate`].
pub fn simulate_parallel_with_traffic(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    threads: usize,
) -> Result<(SimStats, SymMatrix<u64>), SimError> {
    let (stats, traffic) = run_parallel(
        prog,
        map,
        config,
        true,
        &ParConfig::new(threads),
        &mut EngineObs::disabled(),
    )?;
    Ok((stats, traffic.expect("traffic recording was enabled")))
}

/// [`simulate_parallel_with_traffic`] with explicit [`ParConfig`]
/// (fixed windows for boundary-edge tests).
///
/// # Errors
///
/// Same as [`crate::simulate`].
pub fn simulate_parallel_configured(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    par: &ParConfig,
) -> Result<(SimStats, SymMatrix<u64>), SimError> {
    let (stats, traffic) = run_parallel(prog, map, config, true, par, &mut EngineObs::disabled())?;
    Ok((stats, traffic.expect("traffic recording was enabled")))
}

/// A cross-shard coherence event, keyed by the issuing action's
/// `(time, processor)` — the serial engine's interleaving order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Foreign {
    t: u64,
    from: usize,
    line: u64,
    kind: ForeignKind,
    /// Thread running on `from` when the event was issued — the writer
    /// recorded as invalidation provenance (and attribution source).
    writer: ThreadId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForeignKind {
    Invalidate,
    Downgrade,
}

impl Foreign {
    fn key(self) -> (u64, usize) {
        (self.t, self.from)
    }
}

/// One globally-visible action logged by a shard during a window.
#[derive(Debug, Clone, Copy)]
struct Act {
    t: u64,
    p: usize,
    /// Thread issuing the action (provenance for the foreign events the
    /// validator derives from it).
    tid: ThreadId,
    kind: ActKind,
}

#[derive(Debug, Clone, Copy)]
enum ActKind {
    Miss {
        line: u64,
        is_write: bool,
        kind: MissKind,
        source: Option<ProcessorId>,
        victim: Option<u64>,
    },
    Upgrade {
        line: u64,
    },
    Barrier,
}

/// One coherence-attribution event buffered by a shard, keyed by the
/// issuing action's `(t, from)` plus the serial engine's intra-action
/// emission sequence: 0 = the coherence-miss record (emitted before the
/// directory transaction), `1 + victim processor` = each invalidation
/// receive (the directory's `SharerSet` iterates ascending). Sorting a
/// window's events by `(t, from, seq)` reproduces the serial feed.
#[derive(Debug, Clone, Copy)]
struct AttrEvt {
    t: u64,
    from: usize,
    seq: u32,
    kind: AttrKind,
    line: u64,
    writer: u32,
    victim: u32,
}

/// One simulated processor's complete movable state: the serial
/// engine's per-processor pieces plus the window-protocol bookkeeping.
struct ShardProc<'a> {
    proc: Processor<'a>,
    cache: ProcessorCache,
    /// Pending event time ([`NO_EVENT`] if none) — the slot-queue entry.
    slot: u64,
    /// `Some(park_time)` while parked with every context at a barrier.
    parked: Option<u64>,
    /// Per-cache-set `(execution stamp, issue cycle + 1)` of this
    /// processor's latest access, for the event-commute test. Entries
    /// whose stamp is not the latest `exec_id` are from a rolled-back
    /// or earlier execution and read as "never touched".
    touch: Vec<(u32, u64)>,
    exec_id: u32,
    /// Actions logged by the latest execution of the current window.
    log: Vec<Act>,
    /// Attribution events recorded by the latest execution (same
    /// lifecycle as `log`: cleared on every re-execution, so rolled-back
    /// speculation never leaks events). Always empty unless the run's
    /// [`Consts::attr`] flag is set.
    attr_log: Vec<AttrEvt>,
    /// Foreign events handed to the latest execution, in key order.
    consumed: Vec<Foreign>,
}

/// Restore point taken at window entry.
struct Snap<'a> {
    proc: Processor<'a>,
    cache: ProcessorCache,
    slot: u64,
    parked: Option<u64>,
}

impl<'a> ShardProc<'a> {
    fn snapshot(&self) -> Snap<'a> {
        Snap {
            proc: self.proc.clone(),
            cache: self.cache.clone(),
            slot: self.slot,
            parked: self.parked,
        }
    }

    fn restore(&mut self, snap: &Snap<'a>) {
        self.proc = snap.proc.clone();
        self.cache = snap.cache.clone();
        self.slot = snap.slot;
        self.parked = snap.parked;
    }
}

/// Per-run constants shared with workers.
struct Consts {
    line_size: u64,
    set_mask: u64,
    latency: u64,
    switch_cost: u64,
    /// Record attribution events (the run's `EngineObs` carries a
    /// collector). Always `false` without the `obs` feature.
    attr: bool,
}

/// Applies a foreign event to the cache of shard `qi`. Residency-guarded:
/// during a mis-speculated iteration the line may already be gone (or
/// not Modified), and the serial engine never sends an event a cache
/// cannot honor, so skipping is always safe — the iteration that
/// matters (the fixed point) has consistent state. When `attr` is set,
/// an applied invalidation is recorded against the slot's owner thread
/// (read *before* the invalidate, exactly like the serial engine).
fn apply_foreign(
    cache: &mut ProcessorCache,
    e: Foreign,
    qi: usize,
    attr: bool,
    attr_log: &mut Vec<AttrEvt>,
) {
    match e.kind {
        ForeignKind::Invalidate => {
            if cache.state_of(e.line).is_some() {
                if attr {
                    attr_log.push(AttrEvt {
                        t: e.t,
                        from: e.from,
                        seq: 1 + u32::try_from(qi).expect("processor index fits in u32"),
                        kind: AttrKind::Invalidation,
                        line: e.line,
                        writer: e.writer.index() as u32,
                        victim: owner_u32(cache, e.line),
                    });
                }
                cache.invalidate(e.line, ProcessorId::from_index(e.from), e.writer);
            }
        }
        ForeignKind::Downgrade => {
            if cache.state_of(e.line) == Some(LineState::Modified) {
                cache.downgrade(e.line);
            }
        }
    }
}

/// Why `run_window`'s hit loop stopped (the serial engine's `Stop` plus
/// the window-bound yield).
enum PStop {
    HitExhausted,
    Barrier {
        exhausted: bool,
    },
    Upgrade {
        line: u64,
        exhausted: bool,
    },
    Miss {
        line: u64,
        is_write: bool,
        kind: MissKind,
        source: Option<ProcessorId>,
        exhausted: bool,
    },
    Yield,
}

/// Advances one shard to the exclusive `(time, processor)` key `bound`,
/// mirroring the serial engine's event loop cycle-for-cycle for this
/// processor. Global effects are logged, not applied; `consumed`
/// foreign events are applied in key order exactly where the serial
/// interleaving would, with leftovers drained at the window edge.
///
/// `self_release == Some(t)` marks this processor's barrier arrival at
/// cycle `t` as the global release (the window is truncated just past
/// it): the arrival wakes this processor's own waiting contexts exactly
/// like the serial release loop; the coordinator wakes everyone else.
#[allow(clippy::too_many_lines)]
fn run_window(
    sp: &mut ShardProc<'_>,
    pi: usize,
    bound: (u64, usize),
    self_release: Option<u64>,
    c: &Consts,
) {
    sp.exec_id = sp.exec_id.wrapping_add(1);
    sp.log.clear();
    sp.attr_log.clear();
    let ShardProc {
        proc,
        cache,
        slot,
        parked,
        touch,
        exec_id,
        log,
        attr_log,
        consumed,
    } = sp;
    let exec_id = *exec_id;
    let events: &[Foreign] = consumed;
    let mut ei = 0usize;

    'dispatch: loop {
        if *slot == NO_EVENT || (*slot, pi) >= bound {
            // Window edge: every undelivered foreign event lands now.
            // All of them commute with this execution (the validator
            // re-checks and dirties us otherwise), so "at the edge" and
            // "at their serial position" are indistinguishable.
            while ei < events.len() {
                apply_foreign(cache, events[ei], pi, c.attr, attr_log);
                ei += 1;
            }
            break;
        }
        let t = *slot;
        *slot = NO_EVENT;
        let ctx_idx = proc.current;
        let mut now = t;
        let mut run_busy = 0u64;
        let mut run_hits = 0u64;
        let stop = {
            let ctx = &mut proc.contexts[ctx_idx];
            debug_assert!(!ctx.done && !ctx.waiting);
            debug_assert!(ctx.ready_at <= t);
            let thread = ctx.thread;
            loop {
                // Deliver foreign events that the serial engine would
                // have interleaved before this issue position.
                while ei < events.len() && events[ei].key() < (now, pi) {
                    apply_foreign(cache, events[ei], pi, c.attr, attr_log);
                    ei += 1;
                }
                let r: MemRef = ctx
                    .refs
                    .next()
                    .expect("dispatched context has a next reference");
                let exhausted = ctx.refs.len() == 0;
                if r.kind == RefKind::Barrier {
                    break PStop::Barrier { exhausted };
                }
                let line = r.addr.line(c.line_size).raw();
                let is_write = r.kind.is_write();
                touch[(line & c.set_mask) as usize] = (exec_id, now + 1);
                run_busy += 1;
                match cache.access(line, is_write, thread) {
                    Access::Hit => {
                        run_hits += 1;
                        now += 1;
                        if exhausted {
                            ctx.done = true;
                            break PStop::HitExhausted;
                        }
                        if (now, pi) >= bound {
                            break PStop::Yield;
                        }
                    }
                    Access::UpgradeHit => break PStop::Upgrade { line, exhausted },
                    Access::UpdateHit => {
                        // Dragon runs serial (run_parallel falls back
                        // before any window executes).
                        unreachable!("write-update hit in the parallel engine")
                    }
                    Access::Miss { kind, source } => {
                        break PStop::Miss {
                            line,
                            is_write,
                            kind,
                            source,
                            exhausted,
                        }
                    }
                }
            }
        };
        // Flush the hit run (same accounting points as the serial
        // engine's run flush).
        proc.stats.busy += run_busy;
        proc.stats.hits += run_hits;
        proc.stats.finish_time = now;

        let final_hit = matches!(stop, PStop::HitExhausted);
        let reschedule: Option<(bool, bool)> = match stop {
            PStop::Yield => {
                *slot = now;
                continue 'dispatch;
            }
            PStop::HitExhausted => Some((false, true)),
            PStop::Barrier { exhausted } => {
                proc.stats.busy += 1;
                proc.stats.barrier_ops += 1;
                let issue_end = now + 1;
                proc.stats.finish_time = issue_end;
                if exhausted {
                    proc.contexts[ctx_idx].done = true;
                }
                log.push(Act {
                    t: now,
                    p: pi,
                    tid: proc.contexts[ctx_idx].thread,
                    kind: ActKind::Barrier,
                });
                if self_release == Some(now) {
                    // This arrival is the global release: wake own
                    // waiting contexts exactly as the serial release
                    // loop does (the coordinator handles other
                    // processors between windows).
                    for ctx in &mut proc.contexts {
                        if ctx.waiting {
                            ctx.waiting = false;
                            ctx.ready_at = issue_end;
                        }
                    }
                } else if !exhausted {
                    proc.contexts[ctx_idx].waiting = true;
                }
                match proc.next_context(issue_end) {
                    Some((idx, dispatch)) => {
                        if dispatch > issue_end {
                            proc.stats.idle += dispatch - issue_end;
                        }
                        proc.current = idx;
                        *slot = dispatch;
                    }
                    None => {
                        let any_waiting = proc.contexts.iter().any(|ctx| ctx.waiting);
                        if any_waiting {
                            *parked = Some(issue_end);
                        }
                    }
                }
                None
            }
            PStop::Upgrade { line, exhausted } => {
                proc.stats.hits += 1;
                proc.stats.upgrades += 1;
                log.push(Act {
                    t: now,
                    p: pi,
                    tid: proc.contexts[ctx_idx].thread,
                    kind: ActKind::Upgrade { line },
                });
                cache.set_modified(line);
                // upgrade_stalls configs run serial (fallback), so the
                // upgrade never pays the miss path here.
                Some((false, exhausted))
            }
            PStop::Miss {
                line,
                is_write,
                kind,
                source,
                exhausted,
            } => {
                proc.stats.misses.record(kind);
                let fill_state = if is_write {
                    LineState::Modified
                } else {
                    LineState::Shared
                };
                let thread = proc.contexts[ctx_idx].thread;
                if c.attr && kind == MissKind::Invalidation {
                    // The serial engine records the coherence-miss event
                    // before the directory transaction (seq 0); the
                    // writer provenance must be read before `fill`
                    // clears the gone entry.
                    let writer = cache
                        .invalidation_writer(line)
                        .map_or(ATTR_NO_THREAD, |w| w.index() as u32);
                    attr_log.push(AttrEvt {
                        t: now,
                        from: pi,
                        seq: 0,
                        kind: AttrKind::CoherenceMiss,
                        line,
                        writer,
                        victim: thread.index() as u32,
                    });
                }
                let victim = cache.fill(line, fill_state, thread).map(|(vline, _)| vline);
                log.push(Act {
                    t: now,
                    p: pi,
                    tid: thread,
                    kind: ActKind::Miss {
                        line,
                        is_write,
                        kind,
                        source,
                        victim,
                    },
                });
                Some((true, exhausted))
            }
        };
        let Some((missed, exhausted)) = reschedule else {
            continue 'dispatch;
        };

        let issue_end = if final_hit { now } else { now + 1 };
        let ctx = &mut proc.contexts[ctx_idx];
        if exhausted {
            ctx.done = true;
        }
        if missed {
            // memory_occupancy > 0 runs serial (fallback): the fill
            // starts at issue with the contention-free latency.
            ctx.ready_at = now + c.latency;
        }
        proc.stats.finish_time = issue_end;

        if !missed && !exhausted {
            *slot = issue_end;
            continue 'dispatch;
        }

        let (drain_end, drained) = if missed {
            (issue_end + c.switch_cost, c.switch_cost)
        } else {
            (issue_end, 0)
        };
        if let Some((idx, dispatch)) = proc.next_context(drain_end) {
            proc.stats.switching += drained;
            if dispatch > drain_end {
                proc.stats.idle += dispatch - drain_end;
            }
            proc.current = idx;
            *slot = dispatch;
        }
        // else: all contexts done (or waiting without a barrier park) —
        // the processor stops, exactly like the serial engine.
    }
}

/// Validator output for one pass over a window's merged action logs.
struct Scratch {
    sent: Vec<u64>,
    received: Vec<u64>,
    pairs: Vec<(usize, usize)>,
    computed: Vec<Vec<Foreign>>,
    /// Barrier arrivals outstanding after this pass.
    arrivals: u64,
    /// First release found at a key other than `basis` (phase A: any
    /// release; phase B: an unexpected earlier one).
    release: Option<(u64, usize)>,
    /// Whether the expected `basis` release arrival was replayed.
    confirmed: bool,
}

/// Replays the merged window logs against the journaled directory in
/// global `(time, processor)` order — the serial engine's pop order —
/// computing the foreign events every shard should have seen plus the
/// window's invalidation/traffic accounting.
fn validate_window(
    shards: &[Option<ShardProc<'_>>],
    directory: &mut Directory,
    arrivals_in: u64,
    participants: u64,
    basis: Option<(u64, usize)>,
) -> Scratch {
    let p = shards.len();
    directory.journal_rollback();
    let mut scratch = Scratch {
        sent: vec![0; p],
        received: vec![0; p],
        pairs: Vec::new(),
        computed: vec![Vec::new(); p],
        arrivals: arrivals_in,
        release: None,
        confirmed: false,
    };

    let mut acts: Vec<Act> = shards
        .iter()
        .flat_map(|s| {
            s.as_ref()
                .expect("shard in flight during validation")
                .log
                .iter()
                .copied()
        })
        .collect();
    acts.sort_unstable_by_key(|a| (a.t, a.p));

    for act in &acts {
        let actor = ProcessorId::from_index(act.p);
        match act.kind {
            ActKind::Barrier => {
                scratch.arrivals += 1;
                if scratch.arrivals == participants {
                    scratch.arrivals = 0;
                    if basis == Some((act.t, act.p)) {
                        scratch.confirmed = true;
                    } else if scratch.release.is_none() {
                        scratch.release = Some((act.t, act.p));
                    }
                }
            }
            ActKind::Upgrade { line } => {
                let tx = directory.write_fill(actor, line);
                scratch.sent[act.p] += tx.invalidate.len() as u64;
                debug_assert!(tx.downgrade.is_none());
                for victim in tx.invalidate {
                    scratch.received[victim.index()] += 1;
                    scratch.pairs.push((victim.index(), act.p));
                    scratch.computed[victim.index()].push(Foreign {
                        t: act.t,
                        from: act.p,
                        line,
                        kind: ForeignKind::Invalidate,
                        writer: act.tid,
                    });
                }
            }
            ActKind::Miss {
                line,
                is_write,
                kind,
                source,
                victim,
            } => {
                if kind == MissKind::Invalidation {
                    if let Some(src) = source {
                        scratch.pairs.push((act.p, src.index()));
                    }
                }
                let tx = if is_write {
                    directory.write_fill(actor, line)
                } else {
                    directory.read_fill(actor, line)
                };
                scratch.sent[act.p] += tx.invalidate.len() as u64;
                for v in tx.invalidate {
                    scratch.received[v.index()] += 1;
                    scratch.pairs.push((v.index(), act.p));
                    scratch.computed[v.index()].push(Foreign {
                        t: act.t,
                        from: act.p,
                        line,
                        kind: ForeignKind::Invalidate,
                        writer: act.tid,
                    });
                }
                if let Some(owner) = tx.downgrade {
                    scratch.computed[owner.index()].push(Foreign {
                        t: act.t,
                        from: act.p,
                        line,
                        kind: ForeignKind::Downgrade,
                        writer: act.tid,
                    });
                }
                if let Some(vline) = victim {
                    directory.evict(actor, vline);
                }
            }
        }
    }
    scratch
}

/// Shards whose execution is inconsistent with the computed event lists
/// and must be restored and re-run. Clean means: consumed is exactly a
/// prefix of computed, and every event beyond the prefix commutes —
/// the shard never touched the event's cache set at or after the
/// event's key *in its latest execution* (stale stamps read as "never").
fn dirty_shards(shards: &[Option<ShardProc<'_>>], scratch: &Scratch, set_mask: u64) -> Vec<usize> {
    let mut dirty = Vec::new();
    for (qi, slot) in shards.iter().enumerate() {
        let sp = slot.as_ref().expect("shard in flight during validation");
        let comp = &scratch.computed[qi];
        let cons = &sp.consumed;
        if comp.len() < cons.len() || comp[..cons.len()] != cons[..] {
            dirty.push(qi);
            continue;
        }
        for e in &comp[cons.len()..] {
            let (stamp, tc) = sp.touch[(e.line & set_mask) as usize];
            if stamp == sp.exec_id && tc > 0 && (tc - 1, qi) > (e.t, e.from) {
                dirty.push(qi);
                break;
            }
        }
    }
    dirty
}

/// A unit of work shipped to (and back from) a worker thread.
struct Job<'a> {
    pi: usize,
    sp: ShardProc<'a>,
    bound: (u64, usize),
    self_release: Option<u64>,
}

// The size skew is deliberate: Done moves the whole shard back by
// value (the ownership-transfer design §10.2 relies on), and Panicked
// happens at most once per run.
#[allow(clippy::large_enum_variant)]
enum Reply<'a> {
    Done(usize, ShardProc<'a>),
    Panicked(Box<dyn std::any::Any + Send>),
}

const MIN_WINDOW: u64 = 64;
const MAX_WINDOW: u64 = 1 << 16;

/// The coordinator: window loop, worker pool, validation fixed point,
/// barrier truncation and final stats assembly.
#[allow(clippy::too_many_lines)]
pub(crate) fn run_parallel(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    record_traffic: bool,
    par: &ParConfig,
    obs: &mut EngineObs,
) -> Result<(SimStats, Option<SymMatrix<u64>>), SimError> {
    if config.memory_occupancy() > 0 || config.upgrade_stalls() || config.protocol() != Protocol::Wi
    {
        // Globally-coupled timing or a protocol whose fill decisions
        // need the global directory (see module docs): serial engine.
        // The observer rides along, so attribution still works here.
        return run(prog, map, config, record_traffic, obs);
    }
    let participants = validate(prog, map)?;
    let p = map.processor_count();

    let c = Consts {
        line_size: config.line_size(),
        set_mask: config.num_sets() - 1,
        latency: config.memory_latency(),
        switch_cost: config.context_switch(),
        attr: obs.wants_attribution(),
    };
    let num_sets = config.num_sets() as usize;

    let mut slots = vec![NO_EVENT; p];
    let procs = build_processors(prog, map, |pi, at| slots[pi] = at);
    let mut shards: Vec<Option<ShardProc<'_>>> = procs
        .into_iter()
        .zip(&slots)
        .map(|(proc, &slot)| {
            Some(ShardProc {
                proc,
                cache: ProcessorCache::with_associativity(
                    config.num_sets(),
                    config.associativity() as usize,
                ),
                slot,
                parked: None,
                touch: vec![(0, 0); num_sets],
                exec_id: 0,
                log: Vec::new(),
                attr_log: Vec::new(),
                consumed: Vec::new(),
            })
        })
        .collect();

    let mut directory = Directory::new();
    // Journaling is active for the whole run: each window's validation
    // passes roll back to the last commit point and replay.
    directory.journal_begin();
    let mut traffic = record_traffic.then(|| SymMatrix::new(p, 0u64));
    let mut barrier_arrivals = 0u64;
    let mut sent = vec![0u64; p];
    let mut received = vec![0u64; p];

    let fixed_window = par.window > 0;
    let mut window = if fixed_window {
        par.window
    } else {
        (4 * (c.latency + c.switch_cost + 2)).clamp(MIN_WINDOW, MAX_WINDOW)
    };

    let workers = par.threads.max(1).min(p.max(1));
    let cancel = CancelToken::new();

    std::thread::scope(|scope| {
        let (res_tx, res_rx) = mpsc::channel::<Reply<'_>>();
        let mut job_txs: Vec<mpsc::Sender<Job<'_>>> = Vec::new();
        if workers > 1 {
            for _ in 0..workers {
                let (tx, rx) = mpsc::channel::<Job<'_>>();
                job_txs.push(tx);
                let res_tx = res_tx.clone();
                let cancel = cancel.clone();
                let c = &c;
                scope.spawn(move || {
                    while let Ok(mut job) = rx.recv() {
                        if cancel.is_cancelled() {
                            // A sibling worker panicked: hand state back
                            // untouched so the coordinator can unwind.
                            let _ = res_tx.send(Reply::Done(job.pi, job.sp));
                            continue;
                        }
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            run_window(&mut job.sp, job.pi, job.bound, job.self_release, c);
                            job.sp
                        }));
                        let reply = match outcome {
                            Ok(sp) => Reply::Done(job.pi, sp),
                            Err(payload) => {
                                cancel.cancel();
                                Reply::Panicked(payload)
                            }
                        };
                        let _ = res_tx.send(reply);
                    }
                });
            }
        }

        // Runs one batch of window executions, inline or on the pool.
        // A named function (not a closure) so the shard lifetime 'env
        // unifies with the channels' payload lifetime.
        fn execute<'env>(
            shards: &mut [Option<ShardProc<'env>>],
            jobs: &[(usize, Option<u64>)],
            bound: (u64, usize),
            workers: usize,
            job_txs: &[mpsc::Sender<Job<'env>>],
            res_rx: &mpsc::Receiver<Reply<'env>>,
            c: &Consts,
        ) {
            if workers <= 1 {
                for &(pi, self_release) in jobs {
                    let sp = shards[pi].as_mut().expect("shard present for inline run");
                    run_window(sp, pi, bound, self_release, c);
                }
                return;
            }
            let mut pending = 0usize;
            for &(pi, self_release) in jobs {
                let sp = shards[pi].take().expect("shard present for dispatch");
                let job = Job {
                    pi,
                    sp,
                    bound,
                    self_release,
                };
                job_txs[pi % workers]
                    .send(job)
                    .expect("worker alive while coordinator runs");
                pending += 1;
            }
            while pending > 0 {
                match res_rx.recv().expect("workers alive while jobs pending") {
                    Reply::Done(pi, sp) => {
                        shards[pi] = Some(sp);
                        pending -= 1;
                    }
                    Reply::Panicked(payload) => resume_unwind(payload),
                }
            }
        }

        // Per-window staging buffer for the attribution replay
        // (allocation reused across windows).
        let mut attr_evts: Vec<AttrEvt> = Vec::new();
        'windows: loop {
            let w_start = shards
                .iter()
                .map(|s| s.as_ref().expect("all shards home between windows").slot)
                .min()
                .unwrap_or(NO_EVENT);
            if w_start == NO_EVENT {
                break 'windows;
            }
            let full_bound = (w_start.saturating_add(window), 0usize);

            // Window entry: snapshot the executing shards, clear stale
            // per-window state everywhere.
            let mut snaps: Vec<Option<Snap<'_>>> = (0..p).map(|_| None).collect();
            let mut exec_list: Vec<(usize, Option<u64>)> = Vec::new();
            for (qi, slot) in shards.iter_mut().enumerate() {
                let sp = slot.as_mut().expect("all shards home between windows");
                sp.consumed.clear();
                sp.log.clear();
                sp.attr_log.clear();
                if sp.slot != NO_EVENT && (sp.slot, qi) < full_bound {
                    snaps[qi] = Some(sp.snapshot());
                    exec_list.push((qi, None));
                }
            }
            if exec_list.is_empty() {
                // Only parked/stopped processors remain: like the serial
                // engine's drained queue, the simulation is over (a
                // parked processor with no future release never runs).
                break 'windows;
            }

            // Phase A: speculate to the full bound ignoring releases,
            // iterating to the validation fixed point.
            execute(
                &mut shards,
                &exec_list,
                full_bound,
                workers,
                &job_txs,
                &res_rx,
                &c,
            );
            let mut iterations = 0u32;
            let mut scratch = loop {
                let scratch = validate_window(
                    &shards,
                    &mut directory,
                    barrier_arrivals,
                    participants,
                    None,
                );
                let dirty = dirty_shards(&shards, &scratch, c.set_mask);
                if dirty.is_empty() {
                    break scratch;
                }
                iterations += 1;
                assert!(
                    iterations < 100_000,
                    "parallel window validation failed to converge (bug)"
                );
                let rerun: Vec<(usize, Option<u64>)> = dirty
                    .iter()
                    .map(|&qi| {
                        let sp = shards[qi].as_mut().expect("dirty shard present");
                        sp.restore(snaps[qi].as_ref().expect("dirty shard was snapshotted"));
                        sp.consumed = scratch.computed[qi].clone();
                        (qi, None)
                    })
                    .collect();
                execute(
                    &mut shards,
                    &rerun,
                    full_bound,
                    workers,
                    &job_txs,
                    &res_rx,
                    &c,
                );
            };

            // Phase B: a release inside the window truncates it to just
            // past the releasing arrival; the stable prefix re-executes
            // deterministically (seeded with the fixed point's events),
            // so this converges in one pass.
            let mut release = scratch.release;
            if let Some((t_r, p_r)) = release {
                loop {
                    let bound = (t_r, p_r + 1);
                    let rerun: Vec<(usize, Option<u64>)> = snaps
                        .iter()
                        .enumerate()
                        .filter_map(|(qi, snap)| snap.as_ref().map(|s| (qi, s)))
                        .map(|(qi, snap)| {
                            let sp = shards[qi].as_mut().expect("shard present for truncation");
                            sp.restore(snap);
                            sp.log.clear();
                            sp.attr_log.clear();
                            sp.consumed = scratch.computed[qi]
                                .iter()
                                .copied()
                                .filter(|e| e.key() < bound)
                                .collect();
                            (qi, (qi == p_r).then_some(t_r))
                        })
                        .collect();
                    execute(&mut shards, &rerun, bound, workers, &job_txs, &res_rx, &c);
                    scratch = loop {
                        let s = validate_window(
                            &shards,
                            &mut directory,
                            barrier_arrivals,
                            participants,
                            Some((t_r, p_r)),
                        );
                        let dirty = dirty_shards(&shards, &s, c.set_mask);
                        if dirty.is_empty() {
                            break s;
                        }
                        iterations += 1;
                        assert!(
                            iterations < 100_000,
                            "parallel window validation failed to converge (bug)"
                        );
                        let rerun: Vec<(usize, Option<u64>)> = dirty
                            .iter()
                            .map(|&qi| {
                                let sp = shards[qi].as_mut().expect("dirty shard present");
                                sp.restore(snaps[qi].as_ref().expect("dirty shard snapshotted"));
                                sp.consumed = s.computed[qi].clone();
                                (qi, (qi == p_r).then_some(t_r))
                            })
                            .collect();
                        execute(&mut shards, &rerun, bound, workers, &job_txs, &res_rx, &c);
                    };
                    if let Some(earlier) = scratch.release {
                        // An even earlier release surfaced (only possible
                        // while the prefix was still unstable): truncate
                        // again to it.
                        release = Some(earlier);
                        let (t_r, p_r) = earlier;
                        let _ = (t_r, p_r);
                        continue;
                    }
                    if !scratch.confirmed {
                        // The truncated fixed point no longer reaches the
                        // release: commit it as a plain (short) window;
                        // the arrivals carry over to the next one.
                        release = None;
                    }
                    break;
                }
            }

            // Commit: the directory keeps the replayed transactions, the
            // accounting scratch lands in the accumulators, and events
            // beyond each shard's consumed prefix (all commuting, or the
            // shard would have been dirty) are applied at the edge.
            directory.journal_commit();
            directory.journal_begin();
            barrier_arrivals = scratch.arrivals;
            for qi in 0..p {
                sent[qi] += scratch.sent[qi];
                received[qi] += scratch.received[qi];
                let sp = shards[qi].as_mut().expect("all shards home at commit");
                for e in &scratch.computed[qi][sp.consumed.len()..] {
                    let ShardProc {
                        cache, attr_log, ..
                    } = sp;
                    apply_foreign(cache, *e, qi, c.attr, attr_log);
                }
                if c.attr {
                    attr_evts.append(&mut sp.attr_log);
                }
            }
            if c.attr {
                // Replay the window's attribution events in the serial
                // engine's exact emission order (see `AttrEvt`). Window
                // keys are disjoint and increasing, so a per-window sort
                // yields the global serial order.
                attr_evts.sort_unstable_by_key(|e| (e.t, e.from, e.seq));
                for e in &attr_evts {
                    match e.kind {
                        AttrKind::Invalidation => {
                            obs.on_attr_invalidation(e.line, e.writer, e.victim);
                        }
                        AttrKind::CoherenceMiss => {
                            obs.on_attr_coherence_miss(e.line, e.writer, e.victim);
                        }
                        AttrKind::Update => {
                            unreachable!("write-update events in the parallel engine")
                        }
                    }
                }
                attr_evts.clear();
            }
            if let Some(m) = &mut traffic {
                for &(a, b) in &scratch.pairs {
                    if a != b {
                        m.add(a, b, 1);
                    }
                }
            }

            // Barrier release between windows: the serial release loop,
            // minus the arriving processor (already handled in-window).
            if let Some((t_r, _)) = release {
                let wake = t_r + 1;
                for slot in shards.iter_mut() {
                    let sp = slot.as_mut().expect("all shards home at release");
                    let mut woke = false;
                    for ctx in &mut sp.proc.contexts {
                        if ctx.waiting {
                            ctx.waiting = false;
                            ctx.ready_at = wake;
                            woke = true;
                        }
                    }
                    if woke {
                        if let Some(park_time) = sp.parked.take() {
                            if let Some((idx, dispatch)) = sp.proc.next_context(wake) {
                                sp.proc.stats.idle += dispatch - park_time;
                                sp.proc.current = idx;
                                sp.slot = dispatch;
                            }
                        }
                    }
                }
            }

            if !fixed_window {
                if iterations == 0 && release.is_none() {
                    window = (window * 2).min(MAX_WINDOW);
                } else if iterations > 3 {
                    window = (window / 2).max(MIN_WINDOW);
                }
            }
        }
        directory.journal_commit();
        drop(job_txs); // workers exit their recv loops
    });

    let mut per_proc = Vec::with_capacity(p);
    let mut caches = Vec::with_capacity(p);
    for (qi, slot) in shards.into_iter().enumerate() {
        let sp = slot.expect("all shards home at the end");
        let mut stats = sp.proc.stats;
        stats.invalidations_sent += sent[qi];
        stats.invalidations_received += received[qi];
        per_proc.push(stats);
        caches.push(sp.cache);
    }
    let stats = SimStats::new(per_proc);
    #[cfg(feature = "audit")]
    crate::audit::check_drained(prog, map, stats.per_proc(), &caches, &directory);
    #[cfg(not(feature = "audit"))]
    let _ = &caches;
    Ok((stats, traffic))
}
