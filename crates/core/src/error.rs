//! Unified error type for the experiment runner.

use crate::journal::JournalError;
use placesim_machine::{ConfigError, SimError};
use placesim_placement::PlacementError;
use std::fmt;

/// Any failure while preparing or running an experiment.
#[derive(Debug)]
pub enum Error {
    /// A placement algorithm failed.
    Placement(PlacementError),
    /// The simulator rejected its inputs.
    Sim(SimError),
    /// An architectural configuration was invalid.
    Config(ConfigError),
    /// The requested experiment needs a coherence-traffic probe that has
    /// not been run on this [`crate::PreparedApp`].
    ProbeMissing,
    /// The sweep checkpoint journal failed (I/O, corruption, or a
    /// resume against a different sweep's journal).
    Journal(JournalError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Placement(e) => write!(f, "placement failed: {e}"),
            Error::Sim(e) => write!(f, "simulation failed: {e}"),
            Error::Config(e) => write!(f, "bad architecture config: {e}"),
            Error::ProbeMissing => {
                write!(
                    f,
                    "coherence-traffic probe required; call PreparedApp::run_probe first"
                )
            }
            Error::Journal(e) => write!(f, "sweep journal failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Placement(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::ProbeMissing => None,
            Error::Journal(e) => Some(e),
        }
    }
}

impl From<JournalError> for Error {
    fn from(e: JournalError) -> Self {
        Error::Journal(e)
    }
}

impl From<PlacementError> for Error {
    fn from(e: PlacementError) -> Self {
        Error::Placement(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_and_display() {
        let e: Error = PlacementError::ZeroProcessors.into();
        assert!(e.to_string().contains("placement"));
        assert!(e.source().is_some());

        let e: Error = SimError::TooManyProcessors {
            processors: 200,
            max: 128,
        }
        .into();
        assert!(e.to_string().contains("simulation"));

        assert!(Error::ProbeMissing.to_string().contains("probe"));
        assert!(Error::ProbeMissing.source().is_none());

        let e: Error = JournalError::Corrupt("bad header".into()).into();
        assert!(e.to_string().contains("journal"));
        assert!(e.source().is_some());
    }
}
