//! High-level experiment runner for the ISCA 1994 thread-placement
//! reproduction.
//!
//! This crate glues the substrate crates together the way the paper's
//! methodology does (§3): generate (or load) an application's traces,
//! statically analyze them, run a placement algorithm, feed the placement
//! map and traces to the machine simulator, and report cycle/miss
//! statistics. It adds:
//!
//! * [`PreparedApp`] — an application with its analysis cached, ready to
//!   place and simulate many times,
//! * [`run_placement`] / [`run_sweep`] — single runs and parallel
//!   algorithm × processor-count sweeps,
//! * [`figures`] — the series behind the paper's Figures 2–5,
//! * [`tables`] — the rows behind Tables 1–5,
//! * [`report`] — plain-text table rendering.
//!
//! # Example
//!
//! ```
//! use placesim::{PreparedApp, run_placement};
//! use placesim_placement::PlacementAlgorithm;
//! use placesim_workloads::GenOptions;
//!
//! let spec = placesim_workloads::spec("water").unwrap();
//! let app = PreparedApp::prepare(&spec, &GenOptions { scale: 0.002, seed: 1 });
//! let result = run_placement(&app, PlacementAlgorithm::LoadBal, 4)?;
//! assert!(result.stats.execution_time() > 0);
//! # Ok::<(), placesim::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "chaos")]
pub mod chaos;
mod error;
mod experiment;
pub mod export;
pub mod figures;
pub mod grid;
pub mod journal;
pub mod manifest;
pub mod report;
pub mod service;
pub mod supervisor;
pub mod tables;

pub use error::Error;
pub use experiment::{
    run_placement, run_placement_attributed, run_placement_with_config, run_sweep,
    run_sweep_manifested, ExperimentResult, PreparedApp,
};
pub use journal::{
    JournalError, JournalHeader, JournalRecovery, RecordLog, RecordRecovery, JOURNAL_SCHEMA,
};
pub use manifest::{ManifestEntry, RunManifest, METRICS_SCHEMA};
pub use report::{Regression, Report, ReportGroup, ReportHole, REPORT_SCHEMA};
pub use service::{
    LockFile, PlacementService, ServiceConfig, ServiceError, ServiceRecovery, SERVICE_JOURNAL,
    SERVICE_LOCK,
};
pub use supervisor::{
    run_supervised_sweep, sweep_header, BackoffPolicy, SupervisedSweep, SupervisorConfig,
    SweepHole, TELEMETRY_SCHEMA,
};
// The worker pool lives in the trace crate (the bottom of the stack) so
// the analysis passes can share it; re-exported here for sweep callers.
pub use placesim_trace::par::{
    max_workers, parallel_map, parallel_map_isolated, try_parallel_map, CancelToken, IndexedPanic,
    IsolatedOutcome,
};

/// Reads the global scale factor from the `PLACESIM_SCALE` environment
/// variable, defaulting to `default` when unset or unparsable.
///
/// The bench binaries default to 0.1 (10% of paper trace lengths) so a
/// full table regeneration finishes in minutes; set `PLACESIM_SCALE=1.0`
/// for paper-scale runs.
pub fn scale_from_env(default: f64) -> f64 {
    std::env::var("PLACESIM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_env_parsing() {
        // No unsafe env mutation in tests: just exercise the default path.
        assert_eq!(super::scale_from_env(0.25), 0.25);
    }
}
