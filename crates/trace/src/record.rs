//! Core record types: references, addresses and thread identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a memory reference.
///
/// The paper's traces (generated with MPtrace on a Sequent Symmetry)
/// contain both instruction and data references; thread *length* is
/// measured in instructions, while the sharing metrics are computed over
/// data references only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RefKind {
    /// An instruction fetch.
    Instr,
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// A global barrier: the thread waits until every thread of the
    /// program has reached its matching barrier (the paper's coarse
    /// programs "use barriers to separate different phases of work").
    /// The address field carries the barrier ordinal.
    Barrier,
}

impl RefKind {
    /// Returns `true` for [`RefKind::Read`] and [`RefKind::Write`].
    #[inline]
    pub fn is_data(self) -> bool {
        matches!(self, RefKind::Read | RefKind::Write)
    }

    /// Returns `true` for [`RefKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, RefKind::Write)
    }

    /// Encodes the kind into the 2-bit tag used by the packed trace format.
    #[inline]
    pub(crate) fn to_tag(self) -> u64 {
        match self {
            RefKind::Instr => 0,
            RefKind::Read => 1,
            RefKind::Write => 2,
            RefKind::Barrier => 3,
        }
    }

    /// Decodes a 2-bit tag produced by [`RefKind::to_tag`].
    ///
    /// Returns `None` for tags outside the 2-bit range.
    #[inline]
    pub(crate) fn from_tag(tag: u64) -> Option<Self> {
        match tag {
            0 => Some(RefKind::Instr),
            1 => Some(RefKind::Read),
            2 => Some(RefKind::Write),
            3 => Some(RefKind::Barrier),
            _ => None,
        }
    }
}

impl fmt::Display for RefKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RefKind::Instr => "I",
            RefKind::Read => "R",
            RefKind::Write => "W",
            RefKind::Barrier => "B",
        };
        f.write_str(s)
    }
}

/// A byte address in the simulated flat address space.
///
/// Addresses are at most [`Address::MAX_BITS`] (62) bits wide so that a
/// reference packs together with its 2-bit kind tag into a single `u64`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Address(u64);

impl Address {
    /// Number of usable address bits.
    pub const MAX_BITS: u32 = 62;
    /// Largest representable address.
    pub const MAX: Address = Address((1 << Self::MAX_BITS) - 1);

    /// Creates an address.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not fit in [`Address::MAX_BITS`] bits.
    #[inline]
    pub fn new(raw: u64) -> Self {
        assert!(
            raw <= Self::MAX.0,
            "address {raw:#x} exceeds {} bits",
            Self::MAX_BITS
        );
        Address(raw)
    }

    /// Returns the raw address value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-line address for a power-of-two `line_size`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `line_size` is not a power of two.
    #[inline]
    pub fn line(self, line_size: u64) -> LineAddr {
        debug_assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(self.0 >> line_size.trailing_zeros())
    }

    /// Returns the address offset by `delta` bytes.
    #[inline]
    pub fn offset(self, delta: u64) -> Address {
        Address::new(self.0 + delta)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> u64 {
        a.0
    }
}

/// A cache-line address: an [`Address`] shifted right by the line-size bits.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from its raw (already shifted) value.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first byte address covered by this line.
    #[inline]
    pub fn base(self, line_size: u64) -> Address {
        Address::new(self.0 << line_size.trailing_zeros())
    }

    /// The direct-mapped cache set index for a cache of `num_sets` lines.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `num_sets` is not a power of two.
    #[inline]
    pub fn set_index(self, num_sets: u64) -> usize {
        debug_assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        (self.0 & (num_sets - 1)) as usize
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Identifier of a thread within one application ("program trace").
///
/// Thread ids are dense indices `0..t`; the placement algorithms map them
/// onto processors.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ThreadId(u16);

impl ThreadId {
    /// Creates a thread id from a dense index.
    #[inline]
    pub fn new(index: u16) -> Self {
        ThreadId(index)
    }

    /// Creates a thread id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u16`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ThreadId(u16::try_from(index).expect("thread index exceeds u16::MAX"))
    }

    /// Returns the dense index of this thread.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u16` value.
    #[inline]
    pub fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A single memory reference: a kind plus an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// What kind of access this is.
    pub kind: RefKind,
    /// The byte address accessed.
    pub addr: Address,
}

impl MemRef {
    /// Creates a reference of an arbitrary kind.
    #[inline]
    pub fn new(kind: RefKind, addr: Address) -> Self {
        MemRef { kind, addr }
    }

    /// Creates an instruction fetch.
    #[inline]
    pub fn instr(addr: Address) -> Self {
        MemRef::new(RefKind::Instr, addr)
    }

    /// Creates a data load.
    #[inline]
    pub fn read(addr: Address) -> Self {
        MemRef::new(RefKind::Read, addr)
    }

    /// Creates a data store.
    #[inline]
    pub fn write(addr: Address) -> Self {
        MemRef::new(RefKind::Write, addr)
    }

    /// Creates a barrier record for barrier number `ordinal`.
    #[inline]
    pub fn barrier(ordinal: u64) -> Self {
        MemRef::new(RefKind::Barrier, Address::new(ordinal))
    }

    /// Packs the reference into a single `u64` (2-bit tag | 62-bit address).
    #[inline]
    pub fn pack(self) -> u64 {
        (self.kind.to_tag() << Address::MAX_BITS) | self.addr.raw()
    }

    /// Unpacks a value produced by [`MemRef::pack`].
    ///
    /// Returns `None` if the kind tag is invalid.
    #[inline]
    pub fn unpack(packed: u64) -> Option<Self> {
        let kind = RefKind::from_tag(packed >> Address::MAX_BITS)?;
        let addr = Address::new(packed & Address::MAX.raw());
        Some(MemRef { kind, addr })
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(!RefKind::Instr.is_data());
        assert!(RefKind::Read.is_data());
        assert!(RefKind::Write.is_data());
        assert!(!RefKind::Barrier.is_data());
        assert!(!RefKind::Instr.is_write());
        assert!(!RefKind::Read.is_write());
        assert!(RefKind::Write.is_write());
        assert!(!RefKind::Barrier.is_write());
    }

    #[test]
    fn kind_tag_roundtrip() {
        for kind in [
            RefKind::Instr,
            RefKind::Read,
            RefKind::Write,
            RefKind::Barrier,
        ] {
            assert_eq!(RefKind::from_tag(kind.to_tag()), Some(kind));
        }
        assert_eq!(RefKind::from_tag(4), None);
    }

    #[test]
    fn address_line_mapping() {
        let a = Address::new(0x1234);
        assert_eq!(a.line(32).raw(), 0x1234 >> 5);
        assert_eq!(a.line(32).base(32).raw(), 0x1220);
        // Two addresses in the same 32-byte line map to the same LineAddr.
        assert_eq!(Address::new(0x1000).line(32), Address::new(0x101f).line(32));
        assert_ne!(Address::new(0x1000).line(32), Address::new(0x1020).line(32));
    }

    #[test]
    fn address_offset() {
        assert_eq!(Address::new(10).offset(22), Address::new(32));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn address_overflow_panics() {
        let _ = Address::new(1 << 62);
    }

    #[test]
    fn set_index_wraps() {
        let line = LineAddr::from_raw(0x1_0007);
        assert_eq!(line.set_index(16), 7);
        assert_eq!(line.set_index(1 << 16), 0x7);
        assert_eq!(line.set_index(1 << 20), 0x1_0007);
    }

    #[test]
    fn memref_pack_roundtrip() {
        let cases = [
            MemRef::instr(Address::new(0)),
            MemRef::read(Address::new(0xdead_beef)),
            MemRef::write(Address::MAX),
        ];
        for r in cases {
            assert_eq!(MemRef::unpack(r.pack()), Some(r));
        }
    }

    #[test]
    fn memref_barrier_packs() {
        let b = MemRef::barrier(7);
        assert_eq!(MemRef::unpack(b.pack()), Some(b));
        assert_eq!(b.to_string(), "B 0x7");
    }

    #[test]
    fn thread_id_index() {
        let id = ThreadId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id, ThreadId::new(42));
    }

    #[test]
    fn display_formats() {
        assert_eq!(MemRef::read(Address::new(0x10)).to_string(), "R 0x10");
        assert_eq!(ThreadId::new(3).to_string(), "T3");
        assert_eq!(LineAddr::from_raw(2).to_string(), "L0x2");
    }
}
