//! Cheap counting statistics over traces, plus mean/deviation helpers.
//!
//! The paper reports most program characteristics as a mean and a
//! *percentage deviation* (standard deviation as a percentage of the
//! mean); [`MeanDev`] captures that convention.

use crate::{ProgramTrace, ThreadTrace};
use serde::{Deserialize, Serialize};

/// A sample mean together with its standard deviation, reported the way
/// the paper's Table 2 does: deviation as a percentage of the mean.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MeanDev {
    /// Arithmetic mean of the sample.
    pub mean: f64,
    /// Population standard deviation of the sample.
    pub std_dev: f64,
}

impl MeanDev {
    /// Computes mean and population standard deviation of `values`.
    ///
    /// Returns the zero statistic for an empty sample.
    pub fn from_values<I>(values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let values: Vec<f64> = values.into_iter().collect();
        if values.is_empty() {
            return MeanDev::default();
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        MeanDev {
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Deviation as a percentage of the mean (the paper's "Dev(%)").
    ///
    /// Returns 0 when the mean is 0 to avoid dividing by zero.
    pub fn dev_percent(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            100.0 * self.std_dev / self.mean
        }
    }

    /// Absolute deviation: `std_dev * mean` is **not** what the paper
    /// means; it defines absolute deviation as the standard deviation
    /// itself (which "takes into account the size of the mean"). This is
    /// an alias making call sites read like the paper.
    pub fn abs_dev(&self) -> f64 {
        self.std_dev
    }
}

/// Per-thread length/recount statistics for a whole program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramStats {
    /// Number of threads.
    pub threads: usize,
    /// Thread length (instructions) statistics.
    pub thread_length: MeanDev,
    /// Data references per thread statistics.
    pub data_refs: MeanDev,
    /// Total references (instruction + data) across all threads.
    pub total_refs: u64,
    /// Total instructions across all threads.
    pub total_instrs: u64,
}

impl ProgramStats {
    /// Computes statistics over all threads of `prog`.
    pub fn measure(prog: &ProgramTrace) -> Self {
        ProgramStats {
            threads: prog.thread_count(),
            thread_length: MeanDev::from_values(
                prog.threads().iter().map(|t| t.instr_len() as f64),
            ),
            data_refs: MeanDev::from_values(prog.threads().iter().map(|t| t.data_len() as f64)),
            total_refs: prog.total_refs(),
            total_instrs: prog.total_instrs(),
        }
    }
}

/// Fraction of a thread's references that are data references.
pub fn data_ratio(thread: &ThreadTrace) -> f64 {
    if thread.is_empty() {
        0.0
    } else {
        thread.data_len() as f64 / thread.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, MemRef};

    #[test]
    fn mean_dev_basic() {
        let s = MeanDev::from_values([2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        // population std dev of {2,4,6} = sqrt(8/3)
        assert!((s.std_dev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.dev_percent() - 100.0 * (8.0f64 / 3.0).sqrt() / 4.0).abs() < 1e-9);
    }

    #[test]
    fn mean_dev_empty_and_zero_mean() {
        let s = MeanDev::from_values(std::iter::empty());
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.dev_percent(), 0.0);

        let z = MeanDev::from_values([0.0, 0.0]);
        assert_eq!(z.dev_percent(), 0.0);
    }

    #[test]
    fn program_stats() {
        let t0: ThreadTrace = [
            MemRef::instr(Address::new(0)),
            MemRef::instr(Address::new(4)),
            MemRef::read(Address::new(0x100)),
        ]
        .into_iter()
        .collect();
        let t1: ThreadTrace = [
            MemRef::instr(Address::new(8)),
            MemRef::write(Address::new(0x100)),
        ]
        .into_iter()
        .collect();
        let prog = ProgramTrace::new("p", vec![t0, t1]);
        let s = ProgramStats::measure(&prog);
        assert_eq!(s.threads, 2);
        assert_eq!(s.total_refs, 5);
        assert_eq!(s.total_instrs, 3);
        assert!((s.thread_length.mean - 1.5).abs() < 1e-12);
        assert!((s.data_refs.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn data_ratio_values() {
        let t: ThreadTrace = [
            MemRef::instr(Address::new(0)),
            MemRef::read(Address::new(0x100)),
        ]
        .into_iter()
        .collect();
        assert!((data_ratio(&t) - 0.5).abs() < 1e-12);
        assert_eq!(data_ratio(&ThreadTrace::new()), 0.0);
    }
}

#[cfg(test)]
mod abs_dev_tests {
    use super::*;

    #[test]
    fn abs_dev_is_the_standard_deviation() {
        // The paper's "absolute deviation" footnote: deviation that
        // "takes into account the size of the mean".
        let s = MeanDev::from_values([1.0, 3.0]);
        assert!((s.abs_dev() - 1.0).abs() < 1e-12);
        assert_eq!(s.abs_dev(), s.std_dev);
    }
}
