//! Regenerates the paper's Table 2: measured program characteristics.

fn main() {
    placesim_bench::print_table2();
}
