//! The global event loop coupling processors, caches and the directory.
//!
//! # Execution model
//!
//! Every reference costs one issue cycle. On a cache hit the active
//! context continues next cycle. On a miss the reference's line fill and
//! directory transaction happen at issue time, the missing context
//! becomes ready again after the memory latency, and the processor pays
//! the context-switch (pipeline drain) cost before dispatching the next
//! ready context round-robin — idling if none is ready. Processors
//! interleave deterministically through a global priority queue ordered
//! by (time, processor id).
//!
//! Accounting: `busy` counts one cycle per completed reference,
//! `switching` counts drain cycles, `idle` the gaps, and per processor
//! `busy + switching + idle == finish_time` (a conservation law the
//! tests enforce). A missed reference is accounted at its issue cycle;
//! its 50-cycle latency shows up as the context's unavailability, which
//! is the quantity multithreading hides. (The tail latency of a thread's
//! final reference is therefore not part of `finish_time` — a uniform,
//! sub-0.01% simplification at paper trace lengths.)
//!
//! # Hit-run batching
//!
//! Conceptually one queue event dispatches one reference. Literally
//! doing that (see the [`reference`] engine) pays a queue operation per
//! reference even though the overwhelmingly common outcome — a cache hit
//! by the running context — has **no global side effects**: it touches
//! only this processor's cache (LRU order) and counters, schedules
//! nothing, and cannot change any other processor's state.
//!
//! The production engine exploits that. The simulator maintains the
//! invariant of at most one pending event per processor, so instead of
//! a binary heap the queue is a flat slot array `events[p]` of event
//! times; popping is an argmin scan by `(time, processor)` — exactly the
//! heap's pop order — and the scan's runner-up `(t', p')` is the
//! *horizon*: the next event any other processor could possibly run.
//! After popping `(t, p)` the engine executes the current context's
//! references in a tight local loop while they hit, advancing a local
//! clock `now`. The run stops when
//!
//! * the next reference would issue at `(now, p) ≥ (t', p')` — the
//!   horizon. The slot is re-armed at `now` and the other processor's
//!   event runs first, exactly as the per-reference engine would order
//!   them;
//! * the reference misses, is a coherence upgrade, or is a barrier —
//!   these have global effects (directory transactions, invalidations,
//!   releases) and are handled at time `now` by the ordinary slow path;
//! * the context exhausts its trace.
//!
//! Why this is exact and not an approximation: event keys
//! `(time, processor)` are unique (one slot per processor) and are
//! consumed in ascending order. While `(now, p) < (t', p')` holds, the
//! per-reference engine would pop `(now, p)` next anyway, so the batched
//! engine executes the same reference at the same cycle. Since pure hits
//! schedule nothing and mutate nothing outside processor `p`, the slots
//! are untouched during a run and the horizon stays valid for its whole
//! duration; every globally-visible action (miss, upgrade, barrier)
//! still executes in exact `(time, processor)` order. The two engines
//! are therefore bit-for-bit equivalent — asserted per commit by the
//! differential property tests in `tests/differential.rs`.

use crate::cache::{Access, LineState, ProcessorCache};
use crate::config::ArchConfig;
use crate::directory::{Directory, Transaction, MAX_PROCESSORS};
use crate::obs::{EngineObs, EngineObsReport};
use crate::protocol::Protocol;
use crate::stats::{MissKind, ProcStats, SimStats};
use placesim_analysis::SymMatrix;
use placesim_obs::EventTrace;
use placesim_obs::{AttrCollector, AttributionConfig};
use placesim_placement::{PlacementMap, ProcessorId};
use placesim_trace::{MemRef, ProgramTrace, RefKind, ThreadId, ThreadTraceIter};
#[cfg(feature = "reference-engine")]
use std::cmp::Reverse;
#[cfg(feature = "reference-engine")]
use std::collections::BinaryHeap;
use std::fmt;

/// Errors from starting a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The placement map and the trace disagree about the thread count.
    PlacementMismatch {
        /// Threads in the trace.
        trace_threads: usize,
        /// Threads in the placement map.
        placed_threads: usize,
    },
    /// More processors than the directory supports.
    TooManyProcessors {
        /// Processors requested.
        processors: usize,
        /// Supported maximum.
        max: usize,
    },
    /// Threads disagree on how many barriers they cross: a global
    /// barrier with unequal participation would deadlock.
    BarrierMismatch {
        /// Barrier count of thread 0.
        expected: u64,
        /// The first disagreeing thread.
        thread: usize,
        /// Its barrier count.
        found: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PlacementMismatch {
                trace_threads,
                placed_threads,
            } => write!(
                f,
                "trace has {trace_threads} threads but placement map has {placed_threads}"
            ),
            SimError::TooManyProcessors { processors, max } => {
                write!(
                    f,
                    "{processors} processors exceed the supported maximum of {max}"
                )
            }
            SimError::BarrierMismatch {
                expected,
                thread,
                found,
            } => write!(
                f,
                "thread {thread} crosses {found} barriers but thread 0 crosses {expected}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulates `prog` on the machine described by `config`, with threads
/// placed per `map`. See the module docs for the execution model.
///
/// When `PLACESIM_SIM_THREADS` is set above 1 the work-sharded parallel
/// engine ([`crate::parallel::simulate_parallel`]) runs instead; its
/// results are bit-identical to the serial engine's (differential
/// proptests enforce this), so the switch is purely a wall-clock knob.
///
/// # Errors
///
/// Returns [`SimError`] if the placement does not match the trace or
/// exceeds [`MAX_PROCESSORS`] processors.
pub fn simulate(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
) -> Result<SimStats, SimError> {
    let workers = placesim_trace::par::sim_workers();
    if workers > 1 {
        return crate::parallel::simulate_parallel(prog, map, config, workers);
    }
    let (stats, _) = run(prog, map, config, false, &mut EngineObs::disabled())?;
    Ok(stats)
}

/// Like [`simulate`], but additionally records the pairwise
/// processor-to-processor coherence traffic matrix: entry `(i, j)` counts
/// invalidations sent between `i` and `j` plus invalidation misses one of
/// them caused the other (the paper's §4.2 dynamic measurement).
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_with_traffic(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
) -> Result<(SimStats, SymMatrix<u64>), SimError> {
    let workers = placesim_trace::par::sim_workers();
    if workers > 1 {
        return crate::parallel::simulate_parallel_with_traffic(prog, map, config, workers);
    }
    let (stats, traffic) = run(prog, map, config, true, &mut EngineObs::disabled())?;
    Ok((stats, traffic.expect("traffic recording was enabled")))
}

/// [`simulate_with_traffic`] pinned to the serial batched engine,
/// ignoring `PLACESIM_SIM_THREADS`. This is the differential baseline
/// the parallel engine is tested against, and must stay reachable even
/// when the environment opts the normal entry points into parallelism.
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_serial_with_traffic(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
) -> Result<(SimStats, SymMatrix<u64>), SimError> {
    let (stats, traffic) = run(prog, map, config, true, &mut EngineObs::disabled())?;
    Ok((stats, traffic.expect("traffic recording was enabled")))
}

/// Like [`simulate`], but also returns the engine's instrumentation
/// report: event-queue depths, hit-run lengths, context-switch stalls
/// and directory invalidation fan-out.
///
/// The statistics are identical to [`simulate`]'s — observation never
/// perturbs the simulation. Without the `obs` cargo feature the hooks
/// compile to no-ops and the report comes back with
/// [`EngineObsReport::enabled`] `false` and empty distributions.
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_observed(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
) -> Result<(SimStats, EngineObsReport), SimError> {
    let mut obs = EngineObs::enabled();
    let (stats, _) = run(prog, map, config, false, &mut obs)?;
    Ok((stats, obs.report()))
}

/// Like [`simulate_observed`], but additionally records a cycle-stamped
/// event timeline retaining up to `capacity` events (ring buffer:
/// oldest events are overwritten once full, per-kind counts stay
/// exact). Export it with [`EventTrace::to_chrome_json`] or mine it
/// with [`EventTrace::sharing_runs`].
///
/// The statistics are identical to [`simulate`]'s — tracing never
/// perturbs the simulation. Without the `obs` cargo feature the trace
/// comes back empty (and the report disabled).
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_traced(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    capacity: usize,
) -> Result<(SimStats, EngineObsReport, EventTrace), SimError> {
    let mut obs = EngineObs::traced(capacity);
    let (stats, _) = run(prog, map, config, false, &mut obs)?;
    let (report, trace) = obs.finish();
    Ok((stats, report, trace.unwrap_or_else(|| EventTrace::new(1))))
}

/// `true` when this build can actually attribute coherence traffic
/// (the `obs` cargo feature is on). Without it the attributed entry
/// points still run — statistics are unaffected — but the returned
/// collector stays empty, and reports built from it should carry
/// `enabled: false`.
pub fn attribution_enabled() -> bool {
    cfg!(feature = "obs")
}

/// Like [`simulate`], but attributes every coherence event —
/// invalidation, Dragon update, coherence miss — to its (address,
/// writer-thread, victim-thread) triple, aggregated online by an
/// [`AttrCollector`] sized per `acfg`. Always runs the serial batched
/// engine (it is the attribution baseline the parallel engine is
/// differentially tested against); use
/// [`crate::parallel::simulate_attributed_parallel`] to shard.
///
/// The statistics are bit-identical to [`simulate`]'s — attribution
/// never perturbs the simulation (proptest-enforced per protocol).
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_attributed(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    acfg: AttributionConfig,
) -> Result<(SimStats, AttrCollector), SimError> {
    let mut obs = EngineObs::attributed(acfg);
    let (stats, _) = run(prog, map, config, false, &mut obs)?;
    let (_, _, attr) = obs.finish_all();
    Ok((stats, attr.unwrap_or_else(|| AttrCollector::new(acfg))))
}

/// One hardware context: a thread's reference stream plus readiness.
/// `Clone` exists for the parallel engine's per-window snapshots (the
/// iterator is a slice cursor, so a clone is two pointers).
#[derive(Clone)]
pub(crate) struct Context<'a> {
    pub(crate) thread: ThreadId,
    pub(crate) refs: ThreadTraceIter<'a>,
    pub(crate) ready_at: u64,
    pub(crate) done: bool,
    /// Arrived at a barrier and waiting for the release.
    pub(crate) waiting: bool,
}

/// One processor: its contexts and the round-robin cursor.
#[derive(Clone)]
pub(crate) struct Processor<'a> {
    pub(crate) contexts: Vec<Context<'a>>,
    pub(crate) current: usize,
    pub(crate) stats: ProcStats,
}

impl Processor<'_> {
    /// The next context (cyclically after `current`, inclusive of the
    /// current context as last resort) ready by `deadline`, or the
    /// not-done context with the earliest readiness.
    ///
    /// Returns `(index, dispatch_time)` or `None` when all contexts are
    /// done.
    pub(crate) fn next_context(&self, deadline: u64) -> Option<(usize, u64)> {
        let n = self.contexts.len();
        let mut best_later: Option<(u64, usize)> = None;
        for step in 1..=n {
            let idx = (self.current + step) % n;
            let ctx = &self.contexts[idx];
            if ctx.done || ctx.waiting {
                continue;
            }
            if ctx.ready_at <= deadline {
                return Some((idx, deadline));
            }
            let key = (ctx.ready_at, step);
            if best_later.is_none_or(|(r, s)| (key.0, key.1) < (r, s)) {
                best_later = Some((ctx.ready_at, step));
            }
        }
        best_later.map(|(ready, step)| ((self.current + step) % n, ready))
    }
}

/// Validates placement shape, processor count and barrier participation.
/// Returns the barrier participant count.
pub(crate) fn validate(prog: &ProgramTrace, map: &PlacementMap) -> Result<u64, SimError> {
    if map.thread_count() != prog.thread_count() {
        return Err(SimError::PlacementMismatch {
            trace_threads: prog.thread_count(),
            placed_threads: map.thread_count(),
        });
    }
    let p = map.processor_count();
    if p > MAX_PROCESSORS {
        return Err(SimError::TooManyProcessors {
            processors: p,
            max: MAX_PROCESSORS,
        });
    }

    // Global barriers require equal participation or they deadlock.
    let barrier_total = prog
        .threads()
        .first()
        .map(placesim_trace::ThreadTrace::barrier_len)
        .unwrap_or(0);
    for (i, thread) in prog.threads().iter().enumerate() {
        if thread.barrier_len() != barrier_total {
            return Err(SimError::BarrierMismatch {
                expected: barrier_total,
                thread: i,
                found: thread.barrier_len(),
            });
        }
    }
    Ok(prog.thread_count() as u64)
}

/// Builds the per-processor contexts and seeds the event queue.
pub(crate) fn build_processors<'a>(
    prog: &'a ProgramTrace,
    map: &PlacementMap,
    mut schedule: impl FnMut(usize, u64),
) -> Vec<Processor<'a>> {
    let mut procs: Vec<Processor<'a>> = map
        .iter()
        .map(|(_, cluster)| Processor {
            contexts: cluster
                .iter()
                .map(|&tid| Context {
                    thread: tid,
                    refs: prog.thread(tid).iter(),
                    ready_at: 0,
                    done: prog.thread(tid).is_empty(),
                    waiting: false,
                })
                .collect(),
            current: 0,
            stats: ProcStats::default(),
        })
        .collect();
    for (pi, proc) in procs.iter_mut().enumerate() {
        // Start on the first not-done context, if any.
        if let Some((idx, at)) = proc.next_context(0) {
            proc.current = idx;
            schedule(pi, at);
        } else {
            // Degenerate: only empty threads (or none). current stays 0.
            proc.current = 0;
        }
    }
    procs
}

/// Absent event marker in the batched engine's slot queue.
pub(crate) const NO_EVENT: u64 = u64::MAX;

/// "Unknown thread" marker in the attribution hooks (the numeric value
/// of [`placesim_obs::timeline::NO_THREAD`]).
pub(crate) const ATTR_NO_THREAD: u32 = u32::MAX;

/// The last thread to touch `line` in `cache`, as the `u32` the
/// attribution hooks carry ([`ATTR_NO_THREAD`] when not resident).
pub(crate) fn owner_u32(cache: &ProcessorCache, line: u64) -> u32 {
    cache
        .owner_of(line)
        .map_or(ATTR_NO_THREAD, |t| t.index() as u32)
}

fn record_pair(traffic: &mut Option<SymMatrix<u64>>, a: usize, b: usize) {
    if let Some(m) = traffic {
        if a != b {
            m.add(a, b, 1);
        }
    }
}

/// Why a hit run ended; every variant is a reference with global
/// effects (or an end-of-trace) handled by the slow path. The remaining
/// stop — yielding at the horizon — is handled inline in the fast loop.
enum Stop {
    /// The context's final reference hit; the free switch to another
    /// context happens at `now`.
    HitExhausted,
    /// A barrier reference, not yet accounted.
    Barrier {
        /// The barrier was the context's final reference.
        exhausted: bool,
    },
    /// A write hit on a Shared line: directory upgrade at `now`.
    Upgrade {
        /// The written line.
        line: u64,
        /// The upgrade was the context's final reference.
        exhausted: bool,
    },
    /// Dragon: a write hit on a shared line propagating updates at `now`.
    Update {
        /// The written line.
        line: u64,
        /// The update was the context's final reference.
        exhausted: bool,
    },
    /// A miss, already classified by the fused cache access.
    Miss {
        /// The missing line.
        line: u64,
        /// Whether the missing reference writes.
        is_write: bool,
        /// The paper's four-way classification.
        kind: MissKind,
        /// Invalidating processor, for invalidation misses.
        source: Option<ProcessorId>,
        /// The miss was the context's final reference.
        exhausted: bool,
    },
}

#[allow(clippy::too_many_lines)]
pub(crate) fn run(
    prog: &ProgramTrace,
    map: &PlacementMap,
    config: &ArchConfig,
    record_traffic: bool,
    obs: &mut EngineObs,
) -> Result<(SimStats, Option<SymMatrix<u64>>), SimError> {
    let participants = validate(prog, map)?;
    let p = map.processor_count();

    let line_size = config.line_size();
    let switch_cost = config.context_switch();
    let latency = config.memory_latency();
    let occupancy = config.memory_occupancy();
    // Bandwidth-limited interconnect (0 = the paper's contention-free
    // multipath network): each fill occupies the memory channel for
    // `occupancy` cycles, serializing concurrent misses.
    let mut channel_free_at = 0u64;

    // Slot queue: `events[q]` is processor q's (sole) pending event time,
    // `NO_EVENT` if none. One event = dispatch the processor's current
    // context until it can no longer run locally. With at most one event
    // per processor and the paper's small machines, a linear argmin scan
    // beats a binary heap, and the scan's runner-up is the horizon the
    // fast path needs anyway.
    let mut events: Vec<u64> = vec![NO_EVENT; p];
    let mut procs = build_processors(prog, map, |pi, at| events[pi] = at);
    let protocol = config.protocol();
    let mut caches: Vec<ProcessorCache> = (0..p)
        .map(|_| {
            ProcessorCache::with_protocol(
                config.num_sets(),
                config.associativity() as usize,
                protocol,
            )
        })
        .collect();
    let mut directory = Directory::new();
    let mut traffic = record_traffic.then(|| SymMatrix::new(p, 0u64));
    // Barrier bookkeeping: arrivals at the current global barrier, and
    // processors parked with every context waiting on it.
    let mut barrier_arrivals = 0u64;
    let mut parked: Vec<Option<u64>> = vec![None; p]; // Some(park time)

    'events: loop {
        // Pop: argmin over the slots by (time, processor), which is
        // exactly the heap's pop order (ties go to the lower index). The
        // runner-up is the safe horizon: the next event the
        // per-reference engine would interleave. Slots are untouched
        // during a hit run, so it stays valid; `(NO_EVENT, MAX)` (no
        // other pending event) means an unbounded run.
        let mut t = NO_EVENT;
        let mut pi = usize::MAX;
        let mut horizon = (NO_EVENT, usize::MAX);
        for (qi, &eq) in events.iter().enumerate() {
            if eq < t {
                horizon = (t, pi);
                t = eq;
                pi = qi;
            } else if eq < horizon.0 {
                horizon = (eq, qi);
            }
        }
        if t == NO_EVENT {
            break;
        }
        obs.on_pop(&events);
        events[pi] = NO_EVENT;
        // Collapse the (time, processor) horizon into one scalar bound:
        // a tie at the runner-up's time yields only to lower-indexed
        // processors, so a higher-indexed runner-up lets this processor
        // keep the tied cycle.
        let batch_limit = if pi < horizon.1 {
            horizon.0.saturating_add(1)
        } else {
            horizon.0
        };
        let ctx_idx = procs[pi].current;
        // Timeline hooks want the dispatched thread; a scheduled event
        // always has a live current context.
        let cur_thread = procs[pi].contexts[ctx_idx].thread.index() as u32;
        let mut now = t;

        // Fast path: consume the current context's consecutive hitting
        // references without touching the event queue. Counters
        // accumulate in locals and flush once per run, so a hit costs no
        // stat stores at all.
        let mut run_busy = 0u64;
        let mut run_hits = 0u64;
        let stop = {
            let proc = &mut procs[pi];
            let cache = &mut caches[pi];
            // Disjoint field borrows: the loop advances the context while
            // the flushes below update the stats.
            let stats = &mut proc.stats;
            let ctx = &mut proc.contexts[ctx_idx];
            debug_assert!(!ctx.done);
            debug_assert!(ctx.ready_at <= t);
            let thread = ctx.thread;
            loop {
                let r: MemRef = ctx
                    .refs
                    .next()
                    .expect("dispatched context has a next reference");
                let exhausted = ctx.refs.len() == 0;
                if r.kind == RefKind::Barrier {
                    break Stop::Barrier { exhausted };
                }
                let line = r.addr.line(line_size).raw();
                let is_write = r.kind.is_write();
                run_busy += 1;
                match cache.access(line, is_write, thread) {
                    Access::Hit => {
                        run_hits += 1;
                        now += 1;
                        if exhausted {
                            ctx.done = true;
                            break Stop::HitExhausted;
                        }
                        if now >= batch_limit {
                            // Yield to the earliest other event; handled
                            // inline because it is the hottest stop in
                            // lockstep multi-processor phases.
                            stats.busy += run_busy;
                            stats.hits += run_hits;
                            stats.finish_time = now;
                            events[pi] = now;
                            obs.on_hit_run(run_hits);
                            obs.on_run_slice(pi, cur_thread, t, now, run_hits);
                            continue 'events;
                        }
                    }
                    Access::UpgradeHit => break Stop::Upgrade { line, exhausted },
                    Access::UpdateHit => break Stop::Update { line, exhausted },
                    Access::Miss { kind, source } => {
                        break Stop::Miss {
                            line,
                            is_write,
                            kind,
                            source,
                            exhausted,
                        }
                    }
                }
            }
        };
        {
            let stats = &mut procs[pi].stats;
            stats.busy += run_busy;
            stats.hits += run_hits;
            // The run's hits all completed; misses/upgrades/barriers set
            // finish_time again below at their own issue end.
            stats.finish_time = now;
        }
        obs.on_hit_run(run_hits);
        obs.on_run_slice(pi, cur_thread, t, now, run_hits);

        let me = ProcessorId::from_index(pi);
        let cur_tid = procs[pi].contexts[ctx_idx].thread;
        let final_hit = matches!(stop, Stop::HitExhausted);
        // Slow path: `Some((missed, exhausted, fill_line))` falls through
        // to the shared reschedule tail (`fill_line` is `Some` only for
        // real misses, so upgrade stalls emit no fill event); `None` arms
        // reschedule themselves.
        let reschedule: Option<(bool, bool, Option<u64>)> = match stop {
            Stop::HitExhausted => {
                // Switching away from a completed thread is free.
                Some((false, true, None))
            }
            Stop::Barrier { exhausted } => {
                procs[pi].stats.busy += 1;
                procs[pi].stats.barrier_ops += 1;
                let issue_end = now + 1;
                procs[pi].stats.finish_time = issue_end;
                if exhausted {
                    procs[pi].contexts[ctx_idx].done = true;
                }

                barrier_arrivals += 1;
                if barrier_arrivals == participants {
                    // Release: every waiting context resumes next cycle,
                    // and parked processors are rescheduled.
                    barrier_arrivals = 0;
                    for qi in 0..p {
                        let mut woke = false;
                        for ctx in &mut procs[qi].contexts {
                            if ctx.waiting {
                                ctx.waiting = false;
                                ctx.ready_at = issue_end;
                                woke = true;
                            }
                        }
                        if woke {
                            if let Some(park_time) = parked[qi].take() {
                                if let Some((idx, dispatch)) = procs[qi].next_context(issue_end) {
                                    procs[qi].stats.idle += dispatch - park_time;
                                    procs[qi].current = idx;
                                    events[qi] = dispatch;
                                }
                            }
                        }
                    }
                } else if !exhausted {
                    procs[pi].contexts[ctx_idx].waiting = true;
                }

                // Barrier waits are synchronization, not pipeline misses:
                // the switch to another ready context is free.
                match procs[pi].next_context(issue_end) {
                    Some((idx, dispatch)) => {
                        if dispatch > issue_end {
                            procs[pi].stats.idle += dispatch - issue_end;
                        }
                        procs[pi].current = idx;
                        events[pi] = dispatch;
                    }
                    None => {
                        // All contexts done or waiting: park until a
                        // release (or forever, if everything is done).
                        let any_waiting = procs[pi].contexts.iter().any(|c| c.waiting);
                        if any_waiting {
                            parked[pi] = Some(issue_end);
                        }
                    }
                }
                None
            }
            Stop::Upgrade { line, exhausted } => {
                procs[pi].stats.hits += 1;
                procs[pi].stats.upgrades += 1;
                let tx = directory.write_fill(me, line);
                let had_remote = !tx.invalidate.is_empty();
                obs.on_invalidation_fanout(tx.invalidate.len() as u64);
                obs.on_directory(pi, cur_thread, now, line, tx.invalidate.len() as u64, true);
                procs[pi].stats.invalidations_sent += tx.invalidate.len() as u64;
                for victim in tx.invalidate {
                    if obs.wants_attribution() {
                        let owner = owner_u32(&caches[victim.index()], line);
                        obs.on_attr_invalidation(line, cur_thread, owner);
                    }
                    caches[victim.index()].invalidate(line, me, cur_tid);
                    procs[victim.index()].stats.invalidations_received += 1;
                    record_pair(&mut traffic, victim.index(), pi);
                    obs.on_invalidation_pair(pi, victim.index(), line, now);
                }
                caches[pi].set_modified(line);
                Some((config.upgrade_stalls() && had_remote, exhausted, None))
            }
            Stop::Update { line, exhausted } => {
                // Dragon write hit on a shared line: refresh remote
                // copies in place. Counted as a hit (the writer never
                // loses the line); the messages land in the dedicated
                // update counters, not the invalidation ones.
                procs[pi].stats.hits += 1;
                let others = directory.update_fill(me, line);
                let had_remote = !others.is_empty();
                procs[pi].stats.updates_sent += others.len() as u64;
                obs.on_directory(pi, cur_thread, now, line, others.len() as u64, true);
                for sharer in &others {
                    if obs.wants_attribution() {
                        let owner = owner_u32(&caches[sharer.index()], line);
                        obs.on_attr_update(line, cur_thread, owner);
                    }
                    caches[sharer.index()].receive_update(line);
                    procs[sharer.index()].stats.updates_received += 1;
                    record_pair(&mut traffic, sharer.index(), pi);
                    obs.on_update_pair(pi, sharer.index(), line, now);
                }
                if had_remote {
                    caches[pi].set_shared_dirty(line);
                } else {
                    caches[pi].set_modified(line);
                }
                Some((config.upgrade_stalls() && had_remote, exhausted, None))
            }
            Stop::Miss {
                line,
                is_write,
                kind,
                source,
                exhausted,
            } => {
                procs[pi].stats.misses.record(kind);
                obs.on_miss(pi, cur_thread, now, line, kind as u64);
                if kind == MissKind::Invalidation {
                    if let Some(src) = source {
                        record_pair(&mut traffic, pi, src.index());
                    }
                    if obs.wants_attribution() {
                        let writer = caches[pi]
                            .invalidation_writer(line)
                            .map_or(ATTR_NO_THREAD, |w| w.index() as u32);
                        obs.on_attr_coherence_miss(line, writer, cur_thread);
                    }
                }
                // Directory transaction + fill state, per protocol. The
                // `Wi` arms are the paper's machine, byte-for-byte.
                let (tx, fill_state) = match (protocol, is_write) {
                    (Protocol::Wi, true) => (directory.write_fill(me, line), LineState::Modified),
                    (Protocol::Wi, false) => (directory.read_fill(me, line), LineState::Shared),
                    (Protocol::Mesi | Protocol::Dragon, false) => {
                        // Exclusive-clean fill: a read with no other
                        // holder takes E, so a later private write
                        // upgrades silently.
                        if directory.sharers(line).is_empty() {
                            directory.grant_exclusive(me, line);
                            (Transaction::none(), LineState::Exclusive)
                        } else {
                            (directory.read_fill(me, line), LineState::Shared)
                        }
                    }
                    (Protocol::Mesi, true) => (directory.write_fill(me, line), LineState::Modified),
                    (Protocol::Dragon, true) => {
                        // Write-update: remote copies are refreshed, not
                        // invalidated, and the writer fills as dirty
                        // owner of a still-shared line.
                        let others = directory.update_fill(me, line);
                        procs[pi].stats.updates_sent += others.len() as u64;
                        for sharer in &others {
                            if obs.wants_attribution() {
                                let owner = owner_u32(&caches[sharer.index()], line);
                                obs.on_attr_update(line, cur_thread, owner);
                            }
                            caches[sharer.index()].receive_update(line);
                            procs[sharer.index()].stats.updates_received += 1;
                            record_pair(&mut traffic, sharer.index(), pi);
                            obs.on_update_pair(pi, sharer.index(), line, now);
                        }
                        let fill_state = if others.is_empty() {
                            LineState::Modified
                        } else {
                            LineState::SharedDirty
                        };
                        (Transaction::none(), fill_state)
                    }
                };
                if is_write {
                    obs.on_invalidation_fanout(tx.invalidate.len() as u64);
                }
                obs.on_directory(
                    pi,
                    cur_thread,
                    now,
                    line,
                    tx.invalidate.len() as u64,
                    is_write,
                );
                procs[pi].stats.invalidations_sent += tx.invalidate.len() as u64;
                for victim in tx.invalidate {
                    if obs.wants_attribution() {
                        let owner = owner_u32(&caches[victim.index()], line);
                        obs.on_attr_invalidation(line, cur_thread, owner);
                    }
                    caches[victim.index()].invalidate(line, me, cur_tid);
                    procs[victim.index()].stats.invalidations_received += 1;
                    record_pair(&mut traffic, victim.index(), pi);
                    obs.on_invalidation_pair(pi, victim.index(), line, now);
                }
                if let Some(owner) = tx.downgrade {
                    caches[owner.index()].downgrade(line);
                }
                if let Some((vline, _)) = caches[pi].fill(line, fill_state, cur_tid) {
                    directory.evict(me, vline);
                }
                Some((true, exhausted, Some(line)))
            }
        };

        let Some((missed, exhausted, fill_line)) = reschedule else {
            continue 'events;
        };

        // `now` is the issue cycle for misses/upgrades but already the
        // end of issue for a final hit (the fast path advanced it).
        let issue_end = if final_hit { now } else { now + 1 };
        let proc = &mut procs[pi];
        let ctx = &mut proc.contexts[ctx_idx];
        if exhausted {
            ctx.done = true;
        }
        if missed {
            let start = if occupancy == 0 {
                now
            } else {
                let start = channel_free_at.max(now);
                channel_free_at = start + occupancy;
                start
            };
            ctx.ready_at = start + latency;
            if let Some(fline) = fill_line {
                obs.on_fill(pi, cur_thread, ctx.ready_at, fline);
            }
        }
        proc.stats.finish_time = issue_end;

        if !missed && !exhausted {
            // Same context continues next cycle (post-upgrade).
            events[pi] = issue_end;
            continue 'events;
        }

        // Miss-induced switches pay the drain cost; switching away from a
        // completed thread is free (one-time event per thread).
        let (drain_end, drained) = if missed {
            (issue_end + switch_cost, switch_cost)
        } else {
            (issue_end, 0)
        };

        match proc.next_context(drain_end) {
            Some((idx, dispatch)) => {
                proc.stats.switching += drained;
                if missed {
                    obs.on_switch(drained);
                    obs.on_switch_slice(pi, cur_thread, issue_end, drained);
                }
                if dispatch > drain_end {
                    proc.stats.idle += dispatch - drain_end;
                }
                proc.current = idx;
                events[pi] = dispatch;
            }
            None => {
                // All contexts done: the processor is finished. The drain
                // after the final miss is not part of useful execution and
                // is not charged.
            }
        }
    }

    let stats = SimStats::new(procs.into_iter().map(|pr| pr.stats).collect());
    #[cfg(feature = "audit")]
    crate::audit::check_drained(prog, map, stats.per_proc(), &caches, &directory);
    Ok((stats, traffic))
}

/// The pre-batching engine: one heap event per reference, kept verbatim
/// as the obviously-correct oracle for the differential test suite.
/// Compiled only with the default `reference-engine` feature.
#[cfg(feature = "reference-engine")]
pub mod reference {
    use super::*;
    use crate::cache::AccessOutcome;

    /// [`super::simulate`], executed by the per-reference engine.
    ///
    /// # Errors
    ///
    /// Same as [`super::simulate`].
    pub fn simulate(
        prog: &ProgramTrace,
        map: &PlacementMap,
        config: &ArchConfig,
    ) -> Result<SimStats, SimError> {
        let (stats, _) = run(prog, map, config, false)?;
        Ok(stats)
    }

    /// [`super::simulate_with_traffic`], executed by the per-reference
    /// engine.
    ///
    /// # Errors
    ///
    /// Same as [`super::simulate`].
    pub fn simulate_with_traffic(
        prog: &ProgramTrace,
        map: &PlacementMap,
        config: &ArchConfig,
    ) -> Result<(SimStats, SymMatrix<u64>), SimError> {
        let (stats, traffic) = run(prog, map, config, true)?;
        Ok((stats, traffic.expect("traffic recording was enabled")))
    }

    #[allow(clippy::too_many_lines)]
    fn run(
        prog: &ProgramTrace,
        map: &PlacementMap,
        config: &ArchConfig,
        record_traffic: bool,
    ) -> Result<(SimStats, Option<SymMatrix<u64>>), SimError> {
        let participants = validate(prog, map)?;
        let p = map.processor_count();

        let line_size = config.line_size();
        let switch_cost = config.context_switch();
        let latency = config.memory_latency();
        let occupancy = config.memory_occupancy();
        let mut channel_free_at = 0u64;

        // Event queue: Reverse((time, processor)). One event = dispatch
        // one reference of the processor's current context.
        let mut queue: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut procs = build_processors(prog, map, |pi, at| queue.push(Reverse((at, pi))));
        let protocol = config.protocol();
        let mut caches: Vec<ProcessorCache> = (0..p)
            .map(|_| {
                ProcessorCache::with_protocol(
                    config.num_sets(),
                    config.associativity() as usize,
                    protocol,
                )
            })
            .collect();
        let mut directory = Directory::new();
        let mut traffic = record_traffic.then(|| SymMatrix::new(p, 0u64));
        let mut barrier_arrivals = 0u64;
        let mut parked: Vec<Option<u64>> = vec![None; p]; // Some(park time)

        while let Some(Reverse((t, pi))) = queue.pop() {
            let me = ProcessorId::from_index(pi);
            let ctx_idx = procs[pi].current;
            debug_assert!(!procs[pi].contexts[ctx_idx].done);
            debug_assert!(procs[pi].contexts[ctx_idx].ready_at <= t);

            let thread = procs[pi].contexts[ctx_idx].thread;
            let r: MemRef = procs[pi].contexts[ctx_idx]
                .refs
                .next()
                .expect("dispatched context has a next reference");
            let exhausted = procs[pi].contexts[ctx_idx].refs.len() == 0;

            if r.kind == RefKind::Barrier {
                procs[pi].stats.busy += 1;
                procs[pi].stats.barrier_ops += 1;
                let issue_end = t + 1;
                procs[pi].stats.finish_time = issue_end;
                if exhausted {
                    procs[pi].contexts[ctx_idx].done = true;
                }

                barrier_arrivals += 1;
                if barrier_arrivals == participants {
                    barrier_arrivals = 0;
                    for qi in 0..p {
                        let mut woke = false;
                        for ctx in &mut procs[qi].contexts {
                            if ctx.waiting {
                                ctx.waiting = false;
                                ctx.ready_at = issue_end;
                                woke = true;
                            }
                        }
                        if woke {
                            if let Some(park_time) = parked[qi].take() {
                                if let Some((idx, dispatch)) = procs[qi].next_context(issue_end) {
                                    procs[qi].stats.idle += dispatch - park_time;
                                    procs[qi].current = idx;
                                    queue.push(Reverse((dispatch, qi)));
                                }
                            }
                        }
                    }
                } else if !exhausted {
                    procs[pi].contexts[ctx_idx].waiting = true;
                }

                match procs[pi].next_context(issue_end) {
                    Some((idx, dispatch)) => {
                        if dispatch > issue_end {
                            procs[pi].stats.idle += dispatch - issue_end;
                        }
                        procs[pi].current = idx;
                        queue.push(Reverse((dispatch, pi)));
                    }
                    None => {
                        let any_waiting = procs[pi].contexts.iter().any(|c| c.waiting);
                        if any_waiting {
                            parked[pi] = Some(issue_end);
                        }
                    }
                }
                continue;
            }

            let line = r.addr.line(line_size).raw();
            let is_write = r.kind.is_write();

            procs[pi].stats.busy += 1;
            let issue_end = t + 1;

            let missed = match caches[pi].probe(line, is_write) {
                AccessOutcome::Hit => {
                    procs[pi].stats.hits += 1;
                    false
                }
                AccessOutcome::UpgradeHit => {
                    procs[pi].stats.hits += 1;
                    procs[pi].stats.upgrades += 1;
                    let tx = directory.write_fill(me, line);
                    let had_remote = !tx.invalidate.is_empty();
                    procs[pi].stats.invalidations_sent += tx.invalidate.len() as u64;
                    for victim in tx.invalidate {
                        caches[victim.index()].invalidate(line, me, thread);
                        procs[victim.index()].stats.invalidations_received += 1;
                        record_pair(&mut traffic, victim.index(), pi);
                    }
                    caches[pi].set_modified(line);
                    config.upgrade_stalls() && had_remote
                }
                AccessOutcome::UpdateHit => {
                    // Dragon write hit on a shared line (see the batched
                    // engine's Stop::Update arm).
                    procs[pi].stats.hits += 1;
                    let others = directory.update_fill(me, line);
                    let had_remote = !others.is_empty();
                    procs[pi].stats.updates_sent += others.len() as u64;
                    for sharer in &others {
                        caches[sharer.index()].receive_update(line);
                        procs[sharer.index()].stats.updates_received += 1;
                        record_pair(&mut traffic, sharer.index(), pi);
                    }
                    if had_remote {
                        caches[pi].set_shared_dirty(line);
                    } else {
                        caches[pi].set_modified(line);
                    }
                    config.upgrade_stalls() && had_remote
                }
                AccessOutcome::Miss { victim: _ } => {
                    let (kind, source) = caches[pi].miss_provenance(line, thread);
                    procs[pi].stats.misses.record(kind);
                    if kind == MissKind::Invalidation {
                        if let Some(src) = source {
                            record_pair(&mut traffic, pi, src.index());
                        }
                    }
                    // Same per-protocol fill logic as the batched engine.
                    let (tx, fill_state) = match (protocol, is_write) {
                        (Protocol::Wi, true) => {
                            (directory.write_fill(me, line), LineState::Modified)
                        }
                        (Protocol::Wi, false) => (directory.read_fill(me, line), LineState::Shared),
                        (Protocol::Mesi | Protocol::Dragon, false) => {
                            if directory.sharers(line).is_empty() {
                                directory.grant_exclusive(me, line);
                                (Transaction::none(), LineState::Exclusive)
                            } else {
                                (directory.read_fill(me, line), LineState::Shared)
                            }
                        }
                        (Protocol::Mesi, true) => {
                            (directory.write_fill(me, line), LineState::Modified)
                        }
                        (Protocol::Dragon, true) => {
                            let others = directory.update_fill(me, line);
                            procs[pi].stats.updates_sent += others.len() as u64;
                            for sharer in &others {
                                caches[sharer.index()].receive_update(line);
                                procs[sharer.index()].stats.updates_received += 1;
                                record_pair(&mut traffic, sharer.index(), pi);
                            }
                            let fill_state = if others.is_empty() {
                                LineState::Modified
                            } else {
                                LineState::SharedDirty
                            };
                            (Transaction::none(), fill_state)
                        }
                    };
                    procs[pi].stats.invalidations_sent += tx.invalidate.len() as u64;
                    for victim in tx.invalidate {
                        caches[victim.index()].invalidate(line, me, thread);
                        procs[victim.index()].stats.invalidations_received += 1;
                        record_pair(&mut traffic, victim.index(), pi);
                    }
                    if let Some(owner) = tx.downgrade {
                        caches[owner.index()].downgrade(line);
                    }
                    if let Some((vline, _)) = caches[pi].fill(line, fill_state, thread) {
                        directory.evict(me, vline);
                    }
                    true
                }
            };

            let proc = &mut procs[pi];
            let ctx = &mut proc.contexts[ctx_idx];
            if exhausted {
                ctx.done = true;
            }
            if missed {
                let start = if occupancy == 0 {
                    t
                } else {
                    let start = channel_free_at.max(t);
                    channel_free_at = start + occupancy;
                    start
                };
                ctx.ready_at = start + latency;
            }
            proc.stats.finish_time = issue_end;

            if !missed && !exhausted {
                queue.push(Reverse((issue_end, pi)));
                continue;
            }

            let (drain_end, drained) = if missed {
                (issue_end + switch_cost, switch_cost)
            } else {
                (issue_end, 0)
            };

            if let Some((idx, dispatch)) = proc.next_context(drain_end) {
                proc.stats.switching += drained;
                if dispatch > drain_end {
                    proc.stats.idle += dispatch - drain_end;
                }
                proc.current = idx;
                queue.push(Reverse((dispatch, pi)));
            }
        }

        let stats = SimStats::new(procs.into_iter().map(|pr| pr.stats).collect());
        #[cfg(feature = "audit")]
        crate::audit::check_drained(prog, map, stats.per_proc(), &caches, &directory);
        Ok((stats, traffic))
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use placesim_trace::{Address, ThreadTrace};

    fn cfg() -> ArchConfig {
        // Tiny cache: 8 sets of 32 bytes, latency 50, switch 6.
        ArchConfig::builder()
            .cache_size(256)
            .line_size(32)
            .build()
            .unwrap()
    }

    fn single(trace: ThreadTrace) -> (ProgramTrace, PlacementMap) {
        let prog = ProgramTrace::new("t", vec![trace]);
        let map = PlacementMap::from_clusters(vec![vec![0]]).unwrap();
        (prog, map)
    }

    #[test]
    fn all_hits_take_one_cycle_each() {
        // Same line referenced repeatedly: 1 compulsory miss + hits.
        let tr: ThreadTrace = (0..10).map(|_| MemRef::read(Address::new(0x100))).collect();
        let (prog, map) = single(tr);
        let stats = simulate(&prog, &map, &cfg()).unwrap();
        let p0 = stats.per_proc()[0];
        assert_eq!(p0.refs(), 10);
        assert_eq!(p0.misses.compulsory, 1);
        assert_eq!(p0.hits, 9);
        // Timeline: miss at t=0 (busy 1), drain 6, idle until ready at 50,
        // then 9 hits. finish = 50 + 9 = 59.
        assert_eq!(p0.busy, 10);
        assert_eq!(p0.switching, 6);
        assert_eq!(p0.idle, 50 - 7);
        assert_eq!(stats.execution_time(), 59);
        assert_eq!(p0.accounted_cycles(), p0.finish_time);
    }

    #[test]
    fn sequential_instr_stream_misses_per_line() {
        // 16 sequential word fetches cover 2 lines of 32 bytes.
        let tr: ThreadTrace = (0..16)
            .map(|i| MemRef::instr(Address::new(4 * i)))
            .collect();
        let (prog, map) = single(tr);
        let stats = simulate(&prog, &map, &cfg()).unwrap();
        assert_eq!(stats.total_misses().compulsory, 2);
        assert_eq!(stats.total_hits(), 14);
    }

    #[test]
    fn conflict_misses_classified_intra_thread() {
        // Two addresses 256 bytes apart map to the same set (8 sets * 32B).
        let mut tr = ThreadTrace::new();
        for _ in 0..3 {
            tr.push(MemRef::read(Address::new(0x0)));
            tr.push(MemRef::read(Address::new(0x100)));
        }
        let (prog, map) = single(tr);
        let stats = simulate(&prog, &map, &cfg()).unwrap();
        let m = stats.total_misses();
        assert_eq!(m.compulsory, 2);
        assert_eq!(m.intra_thread_conflict, 4);
        assert_eq!(m.inter_thread_conflict, 0);
        assert_eq!(m.invalidation, 0);
    }

    #[test]
    fn inter_thread_conflicts_on_shared_processor() {
        // Two threads on one processor, alternating ownership of a set.
        let t0: ThreadTrace = (0..4).map(|_| MemRef::read(Address::new(0x0))).collect();
        let t1: ThreadTrace = (0..4).map(|_| MemRef::read(Address::new(0x100))).collect();
        let prog = ProgramTrace::new("t", vec![t0, t1]);
        let map = PlacementMap::from_clusters(vec![vec![0, 1]]).unwrap();
        let stats = simulate(&prog, &map, &cfg()).unwrap();
        let m = stats.total_misses();
        assert_eq!(m.compulsory, 2);
        assert!(m.inter_thread_conflict > 0, "{m:?}");
        assert_eq!(m.intra_thread_conflict, 0);
    }

    #[test]
    fn invalidation_misses_across_processors() {
        // T0 reads X, T1 writes X, T0 rereads X → invalidation miss at P0.
        // Interleaving: both threads also execute spacer instructions so
        // the write lands between T0's two reads.
        let mut t0 = ThreadTrace::new();
        t0.push(MemRef::read(Address::new(0x1000)));
        for i in 0..200 {
            t0.push(MemRef::instr(Address::new(4 * i)));
        }
        t0.push(MemRef::read(Address::new(0x1000)));

        let mut t1 = ThreadTrace::new();
        t1.push(MemRef::write(Address::new(0x1000)));

        let prog = ProgramTrace::new("t", vec![t0, t1]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        let stats = simulate(&prog, &map, &cfg()).unwrap();
        let m = stats.total_misses();
        assert_eq!(m.invalidation, 1, "{m:?}");
        assert_eq!(stats.per_proc()[1].invalidations_sent, 1);
        assert_eq!(stats.per_proc()[0].invalidations_received, 1);
        assert_eq!(stats.coherence_traffic(), 2);
    }

    #[test]
    fn upgrade_write_counts_and_invalidates() {
        // T0 and T1 both read X, then T0 writes X (upgrade).
        let mut t0 = ThreadTrace::new();
        t0.push(MemRef::read(Address::new(0x1000)));
        for i in 0..200 {
            t0.push(MemRef::instr(Address::new(4 * i)));
        }
        t0.push(MemRef::write(Address::new(0x1000)));

        let mut t1 = ThreadTrace::new();
        t1.push(MemRef::read(Address::new(0x1000)));

        let prog = ProgramTrace::new("t", vec![t0, t1]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        // Large cache so the instruction stream cannot evict X between
        // the read and the upgrade write.
        let big = ArchConfig::builder().cache_size(1 << 20).build().unwrap();
        let stats = simulate(&prog, &map, &big).unwrap();
        assert_eq!(stats.per_proc()[0].upgrades, 1);
        assert_eq!(stats.per_proc()[0].invalidations_sent, 1);
        assert_eq!(stats.per_proc()[1].invalidations_received, 1);
    }

    #[test]
    fn multithreading_hides_latency() {
        // One long thread alone vs. two threads with disjoint misses on
        // one processor: the pair overlaps latency, so two threads on one
        // processor finish in far less than 2x the solo time.
        let mk = |base: u64| -> ThreadTrace {
            (0..20)
                .map(|i| MemRef::read(Address::new(base + 0x1000 * i)))
                .collect()
        };
        let solo_prog = ProgramTrace::new("solo", vec![mk(0)]);
        let solo_map = PlacementMap::from_clusters(vec![vec![0]]).unwrap();
        let big = ArchConfig::builder().cache_size(1 << 20).build().unwrap();
        let solo = simulate(&solo_prog, &solo_map, &big).unwrap();

        let duo_prog = ProgramTrace::new("duo", vec![mk(0), mk(0x100_0000)]);
        let duo_map = PlacementMap::from_clusters(vec![vec![0, 1]]).unwrap();
        let duo = simulate(&duo_prog, &duo_map, &big).unwrap();

        assert!(
            duo.execution_time() < 2 * solo.execution_time() * 3 / 4,
            "duo {} vs solo {}",
            duo.execution_time(),
            solo.execution_time()
        );
    }

    #[test]
    fn cycle_conservation_per_processor() {
        let t0: ThreadTrace = (0..50)
            .map(|i| MemRef::read(Address::new(0x40 * (i % 13))))
            .collect();
        let t1: ThreadTrace = (0..30)
            .map(|i| MemRef::write(Address::new(0x40 * (i % 7))))
            .collect();
        let t2: ThreadTrace = (0..70)
            .map(|i| MemRef::instr(Address::new(4 * i)))
            .collect();
        let prog = ProgramTrace::new("t", vec![t0, t1, t2]);
        let map = PlacementMap::from_clusters(vec![vec![0, 1], vec![2]]).unwrap();
        let stats = simulate(&prog, &map, &cfg()).unwrap();
        for (i, p) in stats.per_proc().iter().enumerate() {
            assert_eq!(
                p.accounted_cycles(),
                p.finish_time,
                "processor {i}: busy {} + switch {} + idle {} != finish {}",
                p.busy,
                p.switching,
                p.idle,
                p.finish_time
            );
        }
        assert_eq!(stats.total_refs(), 150);
    }

    #[test]
    fn traffic_matrix_symmetry_and_content() {
        let mut t0 = ThreadTrace::new();
        t0.push(MemRef::read(Address::new(0x1000)));
        for i in 0..100 {
            t0.push(MemRef::instr(Address::new(4 * i)));
        }
        t0.push(MemRef::read(Address::new(0x1000)));
        let mut t1 = ThreadTrace::new();
        t1.push(MemRef::write(Address::new(0x1000)));
        let prog = ProgramTrace::new("t", vec![t0, t1]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        let (stats, traffic) = simulate_with_traffic(&prog, &map, &cfg()).unwrap();
        // One invalidation (P1→P0) + one invalidation miss at P0 = 2.
        assert_eq!(traffic.get(0, 1), 2);
        assert_eq!(stats.coherence_traffic(), 2);
    }

    #[test]
    fn placement_mismatch_rejected() {
        let prog = ProgramTrace::new("t", vec![ThreadTrace::new()]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        assert!(matches!(
            simulate(&prog, &map, &cfg()),
            Err(SimError::PlacementMismatch { .. })
        ));
    }

    #[test]
    fn empty_threads_finish_instantly() {
        let prog = ProgramTrace::new("t", vec![ThreadTrace::new(), ThreadTrace::new()]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        let stats = simulate(&prog, &map, &cfg()).unwrap();
        assert_eq!(stats.execution_time(), 0);
        assert_eq!(stats.total_refs(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let t0: ThreadTrace = (0..60)
            .map(|i| MemRef::read(Address::new(0x20 * (i % 17))))
            .collect();
        let t1: ThreadTrace = (0..60)
            .map(|i| MemRef::write(Address::new(0x20 * (i % 11))))
            .collect();
        let prog = ProgramTrace::new("t", vec![t0, t1]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        let a = simulate(&prog, &map, &cfg()).unwrap();
        let b = simulate(&prog, &map, &cfg()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn infinite_cache_eliminates_conflicts() {
        let t0: ThreadTrace = (0..100)
            .map(|i| MemRef::read(Address::new(0x40 * (i % 37))))
            .collect();
        let prog = ProgramTrace::new("t", vec![t0]);
        let map = PlacementMap::from_clusters(vec![vec![0]]).unwrap();
        let stats = simulate(&prog, &map, &ArchConfig::infinite_cache()).unwrap();
        let m = stats.total_misses();
        assert_eq!(m.conflicts(), 0);
        assert_eq!(m.compulsory, 37);
    }
}

#[cfg(test)]
mod contention_tests {
    use super::*;
    use placesim_trace::{Address, ThreadTrace};

    /// Many processors missing simultaneously: a bandwidth-limited
    /// channel must stretch execution, a contention-free one must not.
    #[test]
    fn memory_occupancy_serializes_concurrent_misses() {
        // 8 single-thread processors, each missing on every reference
        // (distinct lines, no reuse).
        let mk = |base: u64| -> ThreadTrace {
            (0..40)
                .map(|i| MemRef::read(Address::new(base + 0x1000 * i)))
                .collect()
        };
        let prog = ProgramTrace::new("missy", (0..8u64).map(|t| mk(t * 0x100_0000)).collect());
        let map = PlacementMap::from_clusters((0..8).map(|i| vec![i]).collect()).unwrap();

        let free = ArchConfig::builder().cache_size(1 << 20).build().unwrap();
        let tight = ArchConfig::builder()
            .cache_size(1 << 20)
            .memory_occupancy(10)
            .build()
            .unwrap();

        let a = simulate(&prog, &map, &free).unwrap();
        let b = simulate(&prog, &map, &tight).unwrap();
        assert!(
            b.execution_time() > a.execution_time() * 3 / 2,
            "contended {} should be well above free {}",
            b.execution_time(),
            a.execution_time()
        );
        // Miss classification is orthogonal to timing.
        assert_eq!(a.total_misses(), b.total_misses());
    }

    /// Occupancy 0 must match the default path bit-for-bit.
    #[test]
    fn zero_occupancy_is_identity() {
        let tr: ThreadTrace = (0..60)
            .map(|i| MemRef::write(Address::new(0x40 * (i % 23))))
            .collect();
        let prog = ProgramTrace::new("t", vec![tr]);
        let map = PlacementMap::from_clusters(vec![vec![0]]).unwrap();
        let base = ArchConfig::paper_default();
        let zero = ArchConfig::builder().memory_occupancy(0).build().unwrap();
        assert_eq!(
            simulate(&prog, &map, &base).unwrap(),
            simulate(&prog, &map, &zero).unwrap()
        );
    }
}

#[cfg(test)]
mod upgrade_tests {
    use super::*;
    use placesim_trace::{Address, ThreadTrace};

    /// With `upgrade_stalls`, a write hit that must invalidate a remote
    /// sharer costs the writer the memory latency; without it, the write
    /// completes in one cycle. Coherence events are identical either way.
    #[test]
    fn upgrade_stall_costs_latency_only() {
        // T0: read X, long spacer, write X (upgrade), more spacers.
        let mut t0 = ThreadTrace::new();
        t0.push(MemRef::read(Address::new(0x8000)));
        for i in 0..300 {
            t0.push(MemRef::instr(Address::new(4 * i)));
        }
        t0.push(MemRef::write(Address::new(0x8000)));
        for i in 0..300 {
            t0.push(MemRef::instr(Address::new(4 * i)));
        }
        // T1 reads X early so the write is a real upgrade.
        let t1: ThreadTrace = [MemRef::read(Address::new(0x8000))].into_iter().collect();

        let prog = ProgramTrace::new("up", vec![t0, t1]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        let big = |stall: bool| {
            ArchConfig::builder()
                .cache_size(1 << 20)
                .upgrade_stalls(stall)
                .build()
                .unwrap()
        };

        let fast = simulate(&prog, &map, &big(false)).unwrap();
        let slow = simulate(&prog, &map, &big(true)).unwrap();

        assert_eq!(fast.per_proc()[0].upgrades, 1);
        assert_eq!(slow.per_proc()[0].upgrades, 1);
        assert_eq!(fast.total_invalidations(), slow.total_invalidations());
        assert_eq!(fast.total_misses(), slow.total_misses());
        // The stalled run pays the latency (minus what the switch would
        // have cost anyway) exactly once.
        let delta = slow.execution_time() - fast.execution_time();
        assert!(
            (40..=60).contains(&delta),
            "stall delta {delta} should be about one memory latency"
        );
    }

    /// An upgrade with no remote sharers never stalls, even with the
    /// knob on.
    #[test]
    fn solo_upgrade_never_stalls() {
        let mut t0 = ThreadTrace::new();
        t0.push(MemRef::read(Address::new(0x8000)));
        t0.push(MemRef::write(Address::new(0x8000)));
        let prog = ProgramTrace::new("solo", vec![t0]);
        let map = PlacementMap::from_clusters(vec![vec![0]]).unwrap();
        let cfg = ArchConfig::builder()
            .cache_size(1 << 20)
            .upgrade_stalls(true)
            .build()
            .unwrap();
        let stats = simulate(&prog, &map, &cfg).unwrap();
        // Read miss at t=0 (ready t=50), write upgrade hit at t=50,
        // finish t=51.
        assert_eq!(stats.execution_time(), 51);
        assert_eq!(stats.per_proc()[0].upgrades, 1);
        assert_eq!(stats.per_proc()[0].invalidations_sent, 0);
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;
    use placesim_trace::{Address, ThreadTrace};

    fn big_cache() -> ArchConfig {
        ArchConfig::builder().cache_size(1 << 20).build().unwrap()
    }

    /// A fast thread must wait at the barrier for a slow one on another
    /// processor.
    #[test]
    fn barrier_synchronizes_across_processors() {
        let mut fast = ThreadTrace::new();
        for i in 0..10 {
            fast.push(MemRef::instr(Address::new(4 * i)));
        }
        fast.push(MemRef::barrier(0));
        for i in 0..5 {
            fast.push(MemRef::instr(Address::new(4 * i)));
        }

        let mut slow = ThreadTrace::new();
        for i in 0..500 {
            slow.push(MemRef::instr(Address::new(4 * i)));
        }
        slow.push(MemRef::barrier(0));
        for i in 0..5 {
            slow.push(MemRef::instr(Address::new(4 * i)));
        }

        let prog = ProgramTrace::new("sync", vec![fast, slow]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        let stats = simulate(&prog, &map, &big_cache()).unwrap();

        // The fast thread's processor finishes only after the slow
        // thread reaches the barrier (~500+ cycles), despite having only
        // 16 references of its own.
        let p0 = stats.per_proc()[0];
        assert!(p0.finish_time > 450, "fast proc finish {}", p0.finish_time);
        assert!(
            p0.idle > 400,
            "fast proc must idle at the barrier: {}",
            p0.idle
        );
        assert_eq!(p0.barrier_ops, 1);
        assert_eq!(p0.accounted_cycles(), p0.finish_time);
        assert_eq!(stats.total_refs(), prog.total_refs());
    }

    /// Two co-resident threads can satisfy a barrier via context
    /// switching on one processor.
    #[test]
    fn barrier_on_one_processor_does_not_deadlock() {
        let mk = |n: u64| -> ThreadTrace {
            let mut t = ThreadTrace::new();
            for i in 0..n {
                t.push(MemRef::instr(Address::new(4 * i)));
            }
            t.push(MemRef::barrier(0));
            t.push(MemRef::instr(Address::new(0)));
            t
        };
        let prog = ProgramTrace::new("local", vec![mk(10), mk(30)]);
        let map = PlacementMap::from_clusters(vec![vec![0, 1]]).unwrap();
        let stats = simulate(&prog, &map, &big_cache()).unwrap();
        assert_eq!(stats.total_refs(), prog.total_refs());
        let p0 = stats.per_proc()[0];
        assert_eq!(p0.barrier_ops, 2);
        assert_eq!(p0.accounted_cycles(), p0.finish_time);
    }

    /// Multiple barrier phases execute in order.
    #[test]
    fn multiple_phases() {
        let mk = |work: u64| -> ThreadTrace {
            let mut t = ThreadTrace::new();
            for phase in 0..3u64 {
                for i in 0..work {
                    t.push(MemRef::instr(Address::new(4 * i)));
                }
                t.push(MemRef::barrier(phase));
            }
            t
        };
        let prog = ProgramTrace::new("phases", vec![mk(20), mk(40), mk(60)]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1], vec![2]]).unwrap();
        let stats = simulate(&prog, &map, &big_cache()).unwrap();
        // Makespan is governed by the slowest thread per phase: at least
        // 3 * 60 instructions.
        assert!(stats.execution_time() >= 3 * 60);
        for p in stats.per_proc() {
            assert_eq!(p.barrier_ops, 3);
            assert_eq!(p.accounted_cycles(), p.finish_time);
        }
    }

    /// Unequal barrier counts are rejected up front.
    #[test]
    fn mismatched_barrier_counts_rejected() {
        let mut t0 = ThreadTrace::new();
        t0.push(MemRef::barrier(0));
        let t1: ThreadTrace = [MemRef::instr(Address::new(0))].into_iter().collect();
        let prog = ProgramTrace::new("bad", vec![t0, t1]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        assert!(matches!(
            simulate(&prog, &map, &big_cache()),
            Err(SimError::BarrierMismatch {
                expected: 1,
                thread: 1,
                found: 0
            })
        ));
    }

    /// A thread ending exactly at its final barrier still releases
    /// everyone else.
    #[test]
    fn thread_ending_at_barrier_releases_peers() {
        let mut ends_at_barrier = ThreadTrace::new();
        ends_at_barrier.push(MemRef::instr(Address::new(0)));
        ends_at_barrier.push(MemRef::barrier(0));

        let mut continues = ThreadTrace::new();
        continues.push(MemRef::barrier(0));
        for i in 0..10 {
            continues.push(MemRef::instr(Address::new(4 * i)));
        }

        let prog = ProgramTrace::new("tail", vec![ends_at_barrier, continues]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        let stats = simulate(&prog, &map, &big_cache()).unwrap();
        assert_eq!(stats.total_refs(), prog.total_refs());
        assert!(stats.per_proc()[1].finish_time >= 12);
    }

    /// Barrier waits interact correctly with cache misses: a waiting
    /// context neither executes nor blocks its co-resident contexts.
    #[test]
    fn waiting_context_lets_others_run() {
        let mut waits_early = ThreadTrace::new();
        waits_early.push(MemRef::barrier(0));
        waits_early.push(MemRef::read(Address::new(0x9000)));

        let mut works = ThreadTrace::new();
        for i in 0..50 {
            works.push(MemRef::read(Address::new(0x1000 + 0x40 * i)));
        }
        works.push(MemRef::barrier(0));

        let prog = ProgramTrace::new("mix", vec![waits_early, works]);
        let map = PlacementMap::from_clusters(vec![vec![0, 1]]).unwrap();
        let stats = simulate(&prog, &map, &big_cache()).unwrap();
        let p0 = stats.per_proc()[0];
        assert_eq!(stats.total_refs(), prog.total_refs());
        assert_eq!(p0.barrier_ops, 2);
        // The working thread's 50 misses dominate; the waiting context
        // must not add idle beyond what the misses force.
        assert_eq!(p0.accounted_cycles(), p0.finish_time);
    }
}

/// Edge cases of the hit-run fast path: runs cut exactly at the
/// horizon, contexts exhausting mid-run, and barriers immediately after
/// a batched run. Every test closes with the cycle conservation law.
#[cfg(test)]
mod horizon_tests {
    use super::*;
    use placesim_trace::{Address, ThreadTrace};

    fn cfg() -> ArchConfig {
        // 8 sets of 32 bytes, latency 50, switch 6, contention-free.
        ArchConfig::builder()
            .cache_size(256)
            .line_size(32)
            .build()
            .unwrap()
    }

    /// Two lockstep processors: every hit run is interrupted after
    /// exactly one reference because the other processor's event sits at
    /// the same cycle. The fast path degenerates to per-reference
    /// stepping and must account identically to it.
    #[test]
    fn hit_run_cut_exactly_at_horizon() {
        let t0: ThreadTrace = (0..10).map(|_| MemRef::read(Address::new(0x000))).collect();
        let t1: ThreadTrace = (0..10).map(|_| MemRef::read(Address::new(0x400))).collect();
        let prog = ProgramTrace::new("lockstep", vec![t0, t1]);
        let map = PlacementMap::from_clusters(vec![vec![0], vec![1]]).unwrap();
        let stats = simulate(&prog, &map, &cfg()).unwrap();

        for p in stats.per_proc() {
            // Compulsory miss at t=0, drain 6, ready at 50, then 9 hits
            // issued one per cycle while the peers interleave.
            assert_eq!(p.misses.compulsory, 1);
            assert_eq!(p.hits, 9);
            assert_eq!(p.busy, 10);
            assert_eq!(p.switching, 6);
            assert_eq!(p.idle, 43);
            assert_eq!(p.finish_time, 59);
            assert_eq!(p.accounted_cycles(), p.finish_time);
        }
    }

    /// A context's trace ends inside a hit run: the run stops, the
    /// thread completes, and the switch to the other context is free
    /// (no drain) — only the wait until its readiness is idle time.
    #[test]
    fn context_exhausts_mid_run() {
        let t0: ThreadTrace = (0..5).map(|_| MemRef::read(Address::new(0x000))).collect();
        let t1: ThreadTrace = (0..5).map(|_| MemRef::read(Address::new(0x020))).collect();
        let prog = ProgramTrace::new("exhaust", vec![t0, t1]);
        let map = PlacementMap::from_clusters(vec![vec![0, 1]]).unwrap();
        let stats = simulate(&prog, &map, &cfg()).unwrap();
        let p0 = stats.per_proc()[0];

        // t=0: thread 0 compulsory miss, drain to 7, thread 1 dispatched.
        // t=7: thread 1 compulsory miss, drain to 14, idle until thread 0
        // ready at 50. t=50..54: thread 0's 4 hits in one batch (queue
        // empty, no horizon), trace done, free switch, idle until 57.
        // t=57..61: thread 1's 4 hits in one batch.
        assert_eq!(p0.misses.compulsory, 2);
        assert_eq!(p0.hits, 8);
        assert_eq!(p0.busy, 10);
        assert_eq!(p0.switching, 12);
        assert_eq!(p0.idle, 36 + 3);
        assert_eq!(p0.finish_time, 61);
        assert_eq!(p0.accounted_cycles(), p0.finish_time);
    }

    /// A barrier is the first reference the slow path sees after a
    /// batched run of hits: arrival bookkeeping, waiting and release all
    /// happen at the batch's local clock, not the event's pop time.
    #[test]
    fn barrier_first_after_batched_run() {
        let mk = |base: u64| -> ThreadTrace {
            let mut t = ThreadTrace::new();
            for _ in 0..4 {
                t.push(MemRef::read(Address::new(base)));
            }
            t.push(MemRef::barrier(0));
            for _ in 0..3 {
                t.push(MemRef::read(Address::new(base)));
            }
            t
        };
        let prog = ProgramTrace::new("batch-barrier", vec![mk(0x000), mk(0x020)]);
        let map = PlacementMap::from_clusters(vec![vec![0, 1]]).unwrap();
        let stats = simulate(&prog, &map, &cfg()).unwrap();
        let p0 = stats.per_proc()[0];

        assert_eq!(stats.total_refs(), prog.total_refs());
        assert_eq!(p0.barrier_ops, 2);
        assert_eq!(p0.misses.total(), 2);
        assert_eq!(p0.hits, 12);
        assert_eq!(p0.accounted_cycles(), p0.finish_time);
    }
}
