//! Run manifests: machine-readable records of what a run executed.
//!
//! Every experiment entry point (the CLI's `simulate --metrics`, the
//! bench binaries, [`crate::run_sweep_manifested`]) can emit a manifest:
//! a single JSON document recording the architecture configuration,
//! generation parameters, wall time, per-combination results and — when
//! the `obs` feature is on — the engine's observability summary. The
//! schema is versioned via the [`METRICS_SCHEMA`] tag so downstream
//! tooling can reject documents it does not understand.
//!
//! # Example
//!
//! ```
//! use placesim::manifest::{RunManifest, METRICS_SCHEMA};
//! use placesim_machine::ArchConfig;
//!
//! let mut m = RunManifest::new("example", "water", &ArchConfig::paper_default());
//! m.scale = Some(0.01);
//! let json = m.to_json();
//! assert!(json.contains(METRICS_SCHEMA));
//! RunManifest::validate(&json).unwrap();
//! ```

use placesim_machine::{ArchConfig, EngineObsReport, MissBreakdown, Protocol, SimStats};
use placesim_obs::json::{self, JsonValue, JsonWriter};
use placesim_obs::sink;
use std::path::Path;

/// Schema tag stamped into every manifest; bump when the layout changes.
pub const METRICS_SCHEMA: &str = "placesim-metrics-v1";

/// Summary of one placement + simulation combination inside a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Paper name of the placement algorithm (or a tool-defined label).
    pub algorithm: String,
    /// Processor count simulated.
    pub processors: usize,
    /// Execution time in cycles (max finish over processors).
    pub execution_time: u64,
    /// Total references executed.
    pub total_refs: u64,
    /// Total cache misses.
    pub total_misses: u64,
    /// Data-reference miss rate in [0, 1].
    pub miss_rate: f64,
    /// Total coherence traffic (invalidations + invalidation misses +
    /// updates; each transaction counted once).
    pub coherence_traffic: u64,
    /// Write-update messages sent (Dragon; structurally zero under the
    /// write-invalidate protocols and in pre-protocol manifests).
    pub update_traffic: u64,
    /// The paper's four-way miss taxonomy (all zero for entries from
    /// tools that do not simulate, or from pre-taxonomy manifests).
    pub misses: MissBreakdown,
}

impl ManifestEntry {
    /// Builds an entry from a simulation's statistics.
    pub fn from_stats(algorithm: &str, processors: usize, stats: &SimStats) -> Self {
        ManifestEntry {
            algorithm: algorithm.to_owned(),
            processors,
            execution_time: stats.execution_time(),
            total_refs: stats.total_refs(),
            total_misses: stats.total_misses().total(),
            miss_rate: stats.miss_rate(),
            coherence_traffic: stats.coherence_traffic(),
            update_traffic: stats.total_updates(),
            misses: stats.total_misses(),
        }
    }
}

/// A complete run manifest; see the module docs for the intent.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Which entry point produced this manifest (`simulate`, `probe`,
    /// `run_sweep`, `bench_engine`, ...).
    pub tool: String,
    /// Application (or trace) name.
    pub app: String,
    /// Trace scale factor, when known (traces loaded from disk lose it).
    pub scale: Option<f64>,
    /// Generation seed, when known.
    pub seed: Option<u64>,
    /// Architecture the run simulated.
    pub config: ArchConfig,
    /// Wall-clock seconds spent in placement + simulation.
    pub wall_secs: f64,
    /// One entry per (algorithm, processors) combination.
    pub entries: Vec<ManifestEntry>,
    /// Engine observability summary, when one was collected.
    pub obs: Option<EngineObsReport>,
}

impl RunManifest {
    /// Starts an empty manifest for `tool` running `app` on `config`.
    pub fn new(tool: &str, app: &str, config: &ArchConfig) -> Self {
        RunManifest {
            tool: tool.to_owned(),
            app: app.to_owned(),
            scale: None,
            seed: None,
            config: *config,
            wall_secs: 0.0,
            entries: Vec::new(),
            obs: None,
        }
    }

    /// Serializes the manifest to a JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", METRICS_SCHEMA);
        w.field_str("tool", &self.tool);
        w.field_str("app", &self.app);
        w.key("scale");
        match self.scale {
            Some(s) => w.value_f64(s),
            None => w.value_null(),
        }
        w.key("seed");
        match self.seed {
            Some(s) => w.value_u64(s),
            None => w.value_null(),
        }
        w.key("config");
        w.begin_object();
        w.field_u64("cache_bytes", self.config.cache_size());
        w.field_u64("line_bytes", self.config.line_size());
        w.field_u64("associativity", u64::from(self.config.associativity()));
        w.field_u64("memory_latency", self.config.memory_latency());
        w.field_u64("memory_occupancy", self.config.memory_occupancy());
        w.field_u64("context_switch", self.config.context_switch());
        w.field_str("protocol", self.config.protocol().as_str());
        w.end_object();
        w.field_f64("wall_secs", self.wall_secs);
        w.key("results");
        w.begin_array();
        for e in &self.entries {
            w.begin_object();
            w.field_str("algorithm", &e.algorithm);
            w.field_u64("processors", e.processors as u64);
            w.field_u64("execution_time", e.execution_time);
            w.field_u64("total_refs", e.total_refs);
            w.field_u64("total_misses", e.total_misses);
            w.field_f64("miss_rate", e.miss_rate);
            w.field_u64("coherence_traffic", e.coherence_traffic);
            w.field_u64("update_traffic", e.update_traffic);
            w.field_u64("compulsory", e.misses.compulsory);
            w.field_u64("intra_thread_conflict", e.misses.intra_thread_conflict);
            w.field_u64("inter_thread_conflict", e.misses.inter_thread_conflict);
            w.field_u64("invalidation", e.misses.invalidation);
            w.end_object();
        }
        w.end_array();
        w.key("obs");
        match &self.obs {
            Some(report) => report.write_json(&mut w),
            None => w.value_null(),
        }
        w.end_object();
        w.finish()
    }

    /// Checks that `json` is a valid manifest of this schema: a single
    /// strictly-parsed JSON document (no trailing garbage, no duplicate
    /// keys), the schema tag, every required key, and the right type on
    /// each required field.
    ///
    /// Every manifest writer in the workspace validates its own output
    /// through this before touching the filesystem, so a schema drift
    /// fails the producing run instead of a downstream consumer.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(json: &str) -> Result<(), String> {
        if !json::balanced(json) {
            return Err("manifest JSON has unbalanced delimiters".into());
        }
        let doc = json::parse(json).map_err(|e| format!("manifest JSON rejected: {e}"))?;
        json::require_keys(
            json,
            &[
                "schema",
                "tool",
                "app",
                "scale",
                "seed",
                "config",
                "cache_bytes",
                "wall_secs",
                "results",
                "obs",
            ],
        )?;
        if doc.get("schema").and_then(JsonValue::as_str) != Some(METRICS_SCHEMA) {
            return Err(format!("manifest is not schema {METRICS_SCHEMA}"));
        }
        for key in ["tool", "app"] {
            if doc.get(key).and_then(JsonValue::as_str).is_none() {
                return Err(format!("manifest field \"{key}\" is not a string"));
            }
        }
        if doc.get("wall_secs").and_then(JsonValue::as_f64).is_none() {
            return Err("manifest field \"wall_secs\" is not a number".into());
        }
        let results = doc
            .get("results")
            .and_then(JsonValue::as_array)
            .ok_or("manifest field \"results\" is not an array")?;
        for (i, entry) in results.iter().enumerate() {
            if entry.get("algorithm").and_then(JsonValue::as_str).is_none() {
                return Err(format!("results[{i}].algorithm is not a string"));
            }
            for key in [
                "processors",
                "execution_time",
                "total_refs",
                "total_misses",
                "coherence_traffic",
            ] {
                if entry.get(key).and_then(JsonValue::as_u64).is_none() {
                    return Err(format!("results[{i}].{key} is not an unsigned integer"));
                }
            }
            if entry.get("miss_rate").and_then(JsonValue::as_f64).is_none() {
                return Err(format!("results[{i}].miss_rate is not a number"));
            }
        }
        Ok(())
    }

    /// Parses a manifest document back into a [`RunManifest`].
    ///
    /// Tolerant where tolerance is safe: entries missing the miss
    /// taxonomy (pre-taxonomy manifests) get zeros, and an embedded
    /// `obs` report is not reconstructed (`obs` comes back `None` —
    /// the aggregator only consumes the tabular fields).
    ///
    /// # Errors
    ///
    /// Anything [`RunManifest::validate`] rejects, plus a config block
    /// that does not describe a buildable architecture.
    pub fn parse(json: &str) -> Result<Self, String> {
        Self::validate(json)?;
        let doc = json::parse(json).map_err(|e| format!("manifest JSON rejected: {e}"))?;
        // Validation above already type-checked these fields, but parse
        // stays defensive: no panic paths on externally supplied data.
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("manifest field {key:?} is not a string"))
        };

        let cfg = doc.get("config").ok_or("manifest has no config block")?;
        let cfg_u64 = |key: &str| -> Result<u64, String> {
            cfg.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("config.{key} is not an unsigned integer"))
        };
        // Additive field: pre-protocol manifests have no config.protocol
        // and mean the paper's write-invalidate machine.
        let protocol = match cfg.get("protocol") {
            None => Protocol::Wi,
            Some(v) => v
                .as_str()
                .ok_or_else(|| "config.protocol is not a string".to_owned())?
                .parse::<Protocol>()
                .map_err(|e| e.to_string())?,
        };
        let config = ArchConfig::builder()
            .cache_size(cfg_u64("cache_bytes")?)
            .line_size(cfg_u64("line_bytes")?)
            .associativity(
                u32::try_from(cfg_u64("associativity")?)
                    .map_err(|_| "config.associativity exceeds u32".to_owned())?,
            )
            .memory_latency(cfg_u64("memory_latency")?)
            .memory_occupancy(cfg_u64("memory_occupancy")?)
            .context_switch(cfg_u64("context_switch")?)
            .protocol(protocol)
            .build()
            .map_err(|e| format!("manifest config is not buildable: {e}"))?;

        let results = doc
            .get("results")
            .and_then(JsonValue::as_array)
            .ok_or("manifest field \"results\" is not an array")?;
        let entries = results
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let u = |key: &str| -> Result<u64, String> {
                    entry
                        .get(key)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("results[{i}].{key} is not an unsigned integer"))
                };
                // Taxonomy fields are additive-in-v1: absent means zero.
                let opt_u = |key: &str| entry.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
                Ok(ManifestEntry {
                    algorithm: entry
                        .get("algorithm")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("results[{i}].algorithm is not a string"))?
                        .to_owned(),
                    processors: u("processors")? as usize,
                    execution_time: u("execution_time")?,
                    total_refs: u("total_refs")?,
                    total_misses: u("total_misses")?,
                    miss_rate: entry
                        .get("miss_rate")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("results[{i}].miss_rate is not a number"))?,
                    coherence_traffic: u("coherence_traffic")?,
                    update_traffic: opt_u("update_traffic"),
                    misses: MissBreakdown {
                        compulsory: opt_u("compulsory"),
                        intra_thread_conflict: opt_u("intra_thread_conflict"),
                        inter_thread_conflict: opt_u("inter_thread_conflict"),
                        invalidation: opt_u("invalidation"),
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;

        Ok(RunManifest {
            tool: str_field("tool")?,
            app: str_field("app")?,
            scale: doc.get("scale").and_then(JsonValue::as_f64),
            seed: doc.get("seed").and_then(JsonValue::as_u64),
            config,
            wall_secs: doc
                .get("wall_secs")
                .and_then(JsonValue::as_f64)
                .ok_or("manifest field \"wall_secs\" is not a number")?,
            entries,
            obs: None,
        })
    }

    /// Validates and atomically writes the manifest to `path` (tempfile
    /// sibling + rename, so a crash never leaves a truncated document).
    ///
    /// # Errors
    ///
    /// Returns a description of a schema self-check failure or an I/O
    /// error.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        let json = self.to_json();
        Self::validate(&json).map_err(|e| format!("manifest self-check failed: {e}"))?;
        sink::write_atomic(path, json.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("test", "water", &ArchConfig::paper_default());
        m.scale = Some(0.01);
        m.seed = Some(1994);
        m.wall_secs = 1.25;
        m.entries.push(ManifestEntry {
            algorithm: "LOAD-BAL".into(),
            processors: 4,
            execution_time: 1000,
            total_refs: 500,
            total_misses: 50,
            miss_rate: 0.1,
            coherence_traffic: 7,
            update_traffic: 0,
            misses: MissBreakdown::default(),
        });
        m
    }

    #[test]
    fn manifest_json_is_valid_and_complete() {
        let json = sample().to_json();
        RunManifest::validate(&json).unwrap();
        assert!(json.contains("\"algorithm\": \"LOAD-BAL\""));
        assert!(json.contains("\"cache_bytes\": 65536"));
        assert!(json.contains("\"seed\": 1994"));
    }

    #[test]
    fn unknown_values_serialize_as_null() {
        let m = RunManifest::new("test", "loaded", &ArchConfig::paper_default());
        let json = m.to_json();
        RunManifest::validate(&json).unwrap();
        assert!(json.contains("\"scale\": null"));
        assert!(json.contains("\"seed\": null"));
        assert!(json.contains("\"obs\": null"));
    }

    #[test]
    fn obs_report_is_embedded() {
        let mut m = sample();
        m.obs = Some(EngineObsReport::default());
        let json = m.to_json();
        RunManifest::validate(&json).unwrap();
        assert!(json.contains("\"enabled\": false"));
    }

    #[test]
    fn validation_rejects_drift() {
        assert!(RunManifest::validate("{}").is_err());
        assert!(RunManifest::validate("{\"schema\": \"placesim-metrics-v1\"").is_err());
        let wrong = sample().to_json().replace(METRICS_SCHEMA, "other-schema");
        assert!(RunManifest::validate(&wrong).is_err());
    }

    #[test]
    fn validation_rejects_duplicate_keys() {
        let json = sample().to_json();
        let dup = json.replacen(
            "\"tool\": \"test\"",
            "\"tool\": \"test\", \"tool\": \"twice\"",
            1,
        );
        let err = RunManifest::validate(&dup).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn validation_rejects_trailing_garbage() {
        let json = sample().to_json();
        let err = RunManifest::validate(&format!("{json} trailing")).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
        assert!(RunManifest::validate(&format!("{json}{json}")).is_err());
    }

    #[test]
    fn validation_rejects_wrong_type_fields() {
        let json = sample().to_json();
        for (good, bad) in [
            ("\"tool\": \"test\"", "\"tool\": 7"),
            ("\"wall_secs\": 1.25", "\"wall_secs\": \"fast\""),
            ("\"execution_time\": 1000", "\"execution_time\": -3"),
            ("\"execution_time\": 1000", "\"execution_time\": 10.5"),
            ("\"miss_rate\": 0.1", "\"miss_rate\": null"),
            ("\"algorithm\": \"LOAD-BAL\"", "\"algorithm\": []"),
        ] {
            let mutated = json.replacen(good, bad, 1);
            assert_ne!(mutated, json, "pattern {good:?} not found");
            assert!(RunManifest::validate(&mutated).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_round_trips_everything_the_writer_emits() {
        let mut m = sample();
        m.entries.push(ManifestEntry {
            algorithm: "RANDOM".into(),
            processors: 8,
            execution_time: 2000,
            total_refs: 900,
            total_misses: 90,
            miss_rate: 0.15,
            coherence_traffic: 11,
            update_traffic: 6,
            misses: MissBreakdown {
                compulsory: 40,
                intra_thread_conflict: 20,
                inter_thread_conflict: 10,
                invalidation: 20,
            },
        });
        let back = RunManifest::parse(&m.to_json()).unwrap();
        assert_eq!(back, m);

        // An embedded obs report is ignored on the way back in, not
        // rejected.
        m.obs = Some(EngineObsReport::default());
        let back = RunManifest::parse(&m.to_json()).unwrap();
        assert_eq!(back.obs, None);
        assert_eq!(back.entries, m.entries);
    }

    #[test]
    fn parse_tolerates_pre_taxonomy_entries() {
        // Strip the additive taxonomy fields, as a PR-3-era manifest
        // would look: the entry parses with a zero breakdown.
        let json = sample().to_json();
        let stripped = json
            .replacen(", \"compulsory\": 0", "", 1)
            .replacen(", \"intra_thread_conflict\": 0", "", 1)
            .replacen(", \"inter_thread_conflict\": 0", "", 1)
            .replacen(", \"invalidation\": 0", "", 1);
        assert_ne!(stripped, json);
        let back = RunManifest::parse(&stripped).unwrap();
        assert_eq!(back.entries[0].misses, MissBreakdown::default());
    }

    #[test]
    fn write_is_atomic_and_validated() {
        let dir = std::env::temp_dir().join("placesim-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.json");
        sample().write(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        RunManifest::validate(&body).unwrap();
        assert!(!placesim_obs::sink::tmp_sibling(&path).exists());
        std::fs::remove_file(&path).ok();
    }
}
