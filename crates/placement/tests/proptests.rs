//! Property-based tests: every algorithm always yields a valid placement.

use placesim_analysis::{SharingAnalysis, SymMatrix};
use placesim_placement::{PlacementAlgorithm, PlacementInputs};
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadId, ThreadTrace};
use proptest::prelude::*;

/// A random small program: up to 12 threads, each touching a random
/// subset of 16 shared addresses and some private ones.
fn arb_program() -> impl Strategy<Value = ProgramTrace> {
    let thread = proptest::collection::vec((0u64..16, 0u8..3, 1u32..6), 1..24);
    proptest::collection::vec(thread, 2..12).prop_map(|threads| {
        let traces: Vec<ThreadTrace> = threads
            .into_iter()
            .enumerate()
            .map(|(tid, accesses)| {
                let mut t = ThreadTrace::new();
                // Some instructions so thread lengths are non-zero and varied.
                for i in 0..(tid + 1) * 3 {
                    t.push(MemRef::instr(Address::new(4 * i as u64)));
                }
                for (slot, kind, reps) in accesses {
                    let addr = Address::new(0x1000 + slot * 8);
                    for _ in 0..reps {
                        let r = match kind {
                            0 => MemRef::read(addr),
                            1 => MemRef::write(addr),
                            // Private address, unique per thread.
                            _ => MemRef::read(Address::new(
                                0x10_0000 + tid as u64 * 0x1000 + slot * 8,
                            )),
                        };
                        t.push(r);
                    }
                }
                t
            })
            .collect();
        ProgramTrace::new("prop", traces)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_algorithm_yields_valid_placement(
        prog in arb_program(),
        p_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let t = prog.thread_count();
        let p = 1 + ((t - 1) as f64 * p_frac) as usize;
        let sharing = SharingAnalysis::measure(&prog);
        let lengths = placesim_placement::thread_lengths(&prog);
        let mut traffic = SymMatrix::new(t, 0u64);
        if t >= 2 {
            traffic.set(0, 1, seed % 17);
        }
        let inputs = PlacementInputs::new(&sharing, &lengths)
            .with_seed(seed)
            .with_traffic(&traffic);

        for algo in PlacementAlgorithm::ALL {
            let map = algo.place(&inputs, p).unwrap();
            // Every thread placed exactly once.
            prop_assert_eq!(map.thread_count(), t);
            prop_assert_eq!(map.processor_count(), p);
            let mut seen = vec![false; t];
            for (proc, cluster) in map.iter() {
                for &tid in cluster {
                    prop_assert!(!seen[tid.index()], "{} placed twice", tid);
                    seen[tid.index()] = true;
                    prop_assert_eq!(map.processor_of(tid), proc);
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "all threads placed");

            // Cluster-combining algorithms and RANDOM are thread-balanced;
            // LOAD-BAL balances instructions instead.
            if algo != PlacementAlgorithm::LoadBal {
                prop_assert!(
                    map.is_thread_balanced(),
                    "{} not thread balanced: {}",
                    algo,
                    map
                );
            }
        }
    }

    #[test]
    fn load_bal_is_at_least_as_balanced_as_worst_random(
        prog in arb_program(),
        seed in 0u64..1000,
    ) {
        let t = prog.thread_count();
        let p = (t / 2).max(1);
        let sharing = SharingAnalysis::measure(&prog);
        let lengths = placesim_placement::thread_lengths(&prog);
        let inputs = PlacementInputs::new(&sharing, &lengths).with_seed(seed);

        let lb = PlacementAlgorithm::LoadBal.place(&inputs, p).unwrap();
        let rand = PlacementAlgorithm::Random.place(&inputs, p).unwrap();
        // LPT's makespan is provably within 4/3 of optimal; in particular
        // it never exceeds the random placement's makespan.
        let lb_max = lb.loads(&lengths).into_iter().max().unwrap_or(0);
        let r_max = rand.loads(&lengths).into_iter().max().unwrap_or(0);
        prop_assert!(lb_max <= r_max, "LPT {lb_max} worse than random {r_max}");
    }

    #[test]
    fn placement_is_deterministic(prog in arb_program(), seed in 0u64..100) {
        let t = prog.thread_count();
        let sharing = SharingAnalysis::measure(&prog);
        let lengths = placesim_placement::thread_lengths(&prog);
        let inputs = PlacementInputs::new(&sharing, &lengths).with_seed(seed);
        let p = (t / 2).max(1);
        for algo in PlacementAlgorithm::STATIC {
            let a = algo.place(&inputs, p).unwrap();
            let b = algo.place(&inputs, p).unwrap();
            prop_assert_eq!(a, b, "{} not deterministic", algo);
        }
    }

    #[test]
    fn share_refs_maximal_pairs_cohabit(seed in 0u64..500) {
        // Build a sharing matrix with one dominant pair; SHARE-REFS must
        // co-locate that pair when p = t/2 makes it feasible.
        let t = 6usize;
        let hot_a = (seed as usize) % t;
        let hot_b = (hot_a + 1 + (seed as usize / t) % (t - 1)) % t;
        let mut traces = Vec::new();
        for i in 0..t {
            let mut tr = ThreadTrace::new();
            tr.push(MemRef::instr(Address::new(0)));
            if i == hot_a || i == hot_b {
                for _ in 0..50 {
                    tr.push(MemRef::read(Address::new(0xBEEF)));
                }
            } else {
                tr.push(MemRef::read(Address::new(0x2000 + i as u64)));
            }
            traces.push(tr);
        }
        let prog = ProgramTrace::new("hot-pair", traces);
        let sharing = SharingAnalysis::measure(&prog);
        let lengths = placesim_placement::thread_lengths(&prog);
        let inputs = PlacementInputs::new(&sharing, &lengths);
        let map = PlacementAlgorithm::ShareRefs.place(&inputs, 3).unwrap();
        prop_assert_eq!(
            map.processor_of(ThreadId::from_index(hot_a)),
            map.processor_of(ThreadId::from_index(hot_b))
        );
    }
}
