//! Application specifications: the target characteristics of each model.

use serde::{Deserialize, Serialize};

/// A target mean with a percentage deviation, matching how the paper's
/// Table 2 reports program characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetStat {
    /// Target mean.
    pub mean: f64,
    /// Target standard deviation as a percentage of the mean.
    pub dev_percent: f64,
}

impl TargetStat {
    /// Convenience constructor.
    pub const fn new(mean: f64, dev_percent: f64) -> Self {
        TargetStat { mean, dev_percent }
    }

    /// The standard deviation in absolute units.
    pub fn std_dev(&self) -> f64 {
        self.mean * self.dev_percent / 100.0
    }
}

/// Workload granularity (paper §3.1): coarse-grain programs have fewer,
/// longer threads; medium-grain programs have more, shorter threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// SPLASH-style programs, millions of instructions per thread.
    Coarse,
    /// Presto programs, hundreds of thousands of instructions per thread.
    Medium,
}

/// The qualitative inter-thread sharing structure of an application.
///
/// Each variant reproduces a sharing style the paper describes, and all
/// of them share data *sequentially* (long same-thread access runs,
/// staggered across threads) — the property §4.2 identifies as the cause
/// of the tiny runtime coherence traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SharingPattern {
    /// Every thread draws from the same shared pool (e.g. Gauss, whose
    /// "threads all shared the same data"; Water/MP3D's uniform
    /// molecule/particle arrays). Produces very uniform pairwise sharing.
    UniformAllShare {
        /// Fraction of shared accesses that are writes.
        write_fraction: f64,
    },
    /// The shared pool is partitioned per thread; reads range over the
    /// whole pool but writes stay in the thread's own partition
    /// (Barnes-Hut: "processes read-share data during the long
    /// computation phase, and write once at the end of the phase").
    PartitionedReadShare {
        /// Fraction of a thread's shared accesses that are local-partition
        /// writes.
        write_fraction: f64,
    },
    /// Data migrates between threads in long write runs (FFT: "73% of all
    /// shared elements are migratory"). Threads sweep rotation-offset
    /// windows of the pool, each owning a region for a long stretch.
    Migratory {
        /// Fraction of accesses in a run that are writes.
        write_fraction: f64,
        /// Fraction of the thread's shared accesses drawn uniformly from
        /// the whole pool instead of its window (tunes how uniform the
        /// pairwise sharing looks; 1.0 degenerates to all-share).
        uniform_fraction: f64,
    },
    /// Each thread shares mostly with its index neighbors (spatial
    /// decompositions: Grav clustering, radiosity patches). Produces
    /// moderate pairwise-sharing deviation.
    NeighborExchange {
        /// Fraction of shared accesses that are writes.
        write_fraction: f64,
        /// How many neighbors on each side a thread overlaps with.
        reach: usize,
        /// Fraction of accesses drawn uniformly from the whole pool.
        uniform_fraction: f64,
    },
    /// Threads communicate pairwise with a few pseudo-random partners
    /// (Fullconn's random communication, Health's doctors/patients).
    /// Produces highly skewed pairwise sharing.
    RandomComm {
        /// Fraction of shared accesses that are writes.
        write_fraction: f64,
        /// Number of partner threads each thread communicates with.
        partners: usize,
        /// Fraction of accesses drawn uniformly from the whole pool.
        uniform_fraction: f64,
    },
}

impl SharingPattern {
    /// The write fraction of the pattern.
    pub fn write_fraction(&self) -> f64 {
        match *self {
            SharingPattern::UniformAllShare { write_fraction }
            | SharingPattern::PartitionedReadShare { write_fraction }
            | SharingPattern::Migratory { write_fraction, .. }
            | SharingPattern::NeighborExchange { write_fraction, .. }
            | SharingPattern::RandomComm { write_fraction, .. } => write_fraction,
        }
    }
}

/// Full specification of one synthetic application.
///
/// Numeric targets come from the paper's Table 2 ("simulated thread
/// length", "% shared refs", "references per shared address") and the
/// per-application prose; thread counts are not legible in the source
/// scan and are chosen to be consistent with the granularity description
/// (documented per app in [`crate::suite`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Application name, lowercase (e.g. `"locusroute"`).
    pub name: &'static str,
    /// Coarse or medium grain.
    pub granularity: Granularity,
    /// Number of threads.
    pub threads: usize,
    /// Thread length in *instructions* (mean + deviation), at scale 1.0.
    pub thread_length: TargetStat,
    /// Percentage (0–100) of data references that touch shared addresses.
    pub shared_percent: f64,
    /// Mean references per shared address (temporal locality).
    pub refs_per_shared_addr: f64,
    /// Data references per instruction.
    pub data_ratio: f64,
    /// Qualitative sharing structure.
    pub pattern: SharingPattern,
    /// Cache size in KB the paper simulates this app with (32 or 64).
    pub cache_kb: u64,
    /// Barrier-separated execution phases (≥ 1). The paper's coarse
    /// programs "use barriers to separate different phases of work";
    /// `phases - 1` global barriers are emitted per thread.
    pub phases: usize,
}

impl AppSpec {
    /// Expected total instructions at a given scale.
    pub fn expected_total_instructions(&self, scale: f64) -> f64 {
        self.thread_length.mean * scale * self.threads as f64
    }

    /// The cache size in bytes for this application (paper §3.2).
    pub fn cache_bytes(&self) -> u64 {
        self.cache_kb * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_stat_std_dev() {
        let s = TargetStat::new(200.0, 50.0);
        assert!((s.std_dev() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn write_fraction_accessor() {
        assert!(
            (SharingPattern::Migratory {
                write_fraction: 0.8,
                uniform_fraction: 0.2
            }
            .write_fraction()
                - 0.8)
                .abs()
                < 1e-12
        );
        assert!(
            (SharingPattern::NeighborExchange {
                write_fraction: 0.3,
                reach: 2,
                uniform_fraction: 0.5
            }
            .write_fraction()
                - 0.3)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn spec_helpers() {
        let spec = AppSpec {
            name: "x",
            granularity: Granularity::Medium,
            threads: 4,
            thread_length: TargetStat::new(1000.0, 10.0),
            shared_percent: 50.0,
            refs_per_shared_addr: 10.0,
            data_ratio: 0.3,
            pattern: SharingPattern::UniformAllShare {
                write_fraction: 0.2,
            },
            cache_kb: 64,
            phases: 1,
        };
        assert!((spec.expected_total_instructions(0.5) - 2000.0).abs() < 1e-9);
        assert_eq!(spec.cache_bytes(), 65536);
    }
}
