//! Prepared applications and placement experiments.

use crate::error::Error;
use crate::manifest::{ManifestEntry, RunManifest};
use placesim_analysis::{SharingAnalysis, SymMatrix};
use placesim_machine::{
    probe_coherence, simulate, simulate_attributed, ArchConfig, AttrCollector, AttributionConfig,
    ProbeResult, SimStats,
};
use placesim_obs::SpanTimer;
use placesim_placement::{thread_lengths, PlacementAlgorithm, PlacementInputs, PlacementMap};
use placesim_trace::par::try_parallel_map;
use placesim_trace::ProgramTrace;
use placesim_workloads::{generate_with_access, AppSpec, GenOptions};

/// An application prepared for experimentation: its trace, static
/// analysis, per-thread lengths, per-app cache configuration and —
/// optionally — the measured coherence-traffic matrix.
#[derive(Debug)]
pub struct PreparedApp {
    /// The spec the trace was generated from.
    pub spec: AppSpec,
    /// The generated program trace.
    pub prog: ProgramTrace,
    /// Static sharing analysis (input to the placement algorithms).
    pub sharing: SharingAnalysis,
    /// Per-thread dynamic lengths in instructions.
    pub lengths: Vec<u64>,
    /// The paper's cache configuration for this app (32 or 64 KB).
    pub config: ArchConfig,
    /// Generation options used (records scale and seed).
    pub gen: GenOptions,
    /// Measured thread-pair coherence traffic, after
    /// [`PreparedApp::run_probe`].
    pub traffic: Option<SymMatrix<u64>>,
}

impl PreparedApp {
    /// Generates and analyzes an application through the fused front
    /// end: the generator emits its access profile alongside the trace,
    /// so the sharing analysis never re-scans the references. The result
    /// is bit-identical to analyzing the trace (the differential
    /// proptests in `placesim-workloads` pin this).
    ///
    /// # Panics
    ///
    /// Panics if the spec's cache size is invalid (cannot happen for the
    /// built-in suite).
    pub fn prepare(spec: &AppSpec, opts: &GenOptions) -> Self {
        let (prog, access) = generate_with_access(spec, opts);
        let sharing = SharingAnalysis::measure_access(&access);
        drop(access);
        let lengths = thread_lengths(&prog);
        let config = ArchConfig::paper_default()
            .with_cache_size(spec.cache_bytes())
            .expect("suite cache sizes are powers of two");
        PreparedApp {
            spec: spec.clone(),
            prog,
            sharing,
            lengths,
            config,
            gen: *opts,
            traffic: None,
        }
    }

    /// Wraps an existing trace (e.g. loaded from disk) instead of
    /// generating one.
    pub fn from_trace(spec: &AppSpec, prog: ProgramTrace, opts: &GenOptions) -> Self {
        let sharing = SharingAnalysis::measure(&prog);
        let lengths = thread_lengths(&prog);
        let config = ArchConfig::paper_default()
            .with_cache_size(spec.cache_bytes())
            .expect("suite cache sizes are powers of two");
        PreparedApp {
            spec: spec.clone(),
            prog,
            sharing,
            lengths,
            config,
            gen: *opts,
            traffic: None,
        }
    }

    /// Runs the one-thread-per-processor coherence probe (paper §4.2)
    /// and caches its traffic matrix for
    /// [`PlacementAlgorithm::CoherenceTraffic`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sim`] if the app has more than 128 threads.
    pub fn run_probe(&mut self) -> Result<ProbeResult, Error> {
        let result = probe_coherence(&self.prog, &self.config)?;
        self.traffic = Some(result.traffic.clone());
        Ok(result)
    }

    /// The placement inputs for this app.
    pub fn placement_inputs(&self) -> PlacementInputs<'_> {
        let mut inputs =
            PlacementInputs::new(&self.sharing, &self.lengths).with_seed(self.gen.seed);
        if let Some(traffic) = &self.traffic {
            inputs = inputs.with_traffic(traffic);
        }
        inputs
    }

    /// Thread count of the application.
    pub fn threads(&self) -> usize {
        self.prog.thread_count()
    }
}

/// Outcome of one placement + simulation run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Algorithm that produced the placement.
    pub algorithm: PlacementAlgorithm,
    /// Processor count.
    pub processors: usize,
    /// The placement used.
    pub map: PlacementMap,
    /// Simulation statistics.
    pub stats: SimStats,
}

impl ExperimentResult {
    /// Execution time (max finish over processors).
    pub fn execution_time(&self) -> u64 {
        self.stats.execution_time()
    }
}

/// Places `app`'s threads with `algorithm` onto `processors` processors
/// and simulates, using the app's per-paper cache configuration.
///
/// # Errors
///
/// Propagates placement and simulation errors; see [`Error`].
pub fn run_placement(
    app: &PreparedApp,
    algorithm: PlacementAlgorithm,
    processors: usize,
) -> Result<ExperimentResult, Error> {
    run_placement_with_config(app, algorithm, processors, &app.config)
}

/// Like [`run_placement`] but with an explicit architecture (used for the
/// 8 MB "infinite cache" experiments and ablations).
///
/// # Errors
///
/// Propagates placement and simulation errors; see [`Error`].
pub fn run_placement_with_config(
    app: &PreparedApp,
    algorithm: PlacementAlgorithm,
    processors: usize,
    config: &ArchConfig,
) -> Result<ExperimentResult, Error> {
    if algorithm == PlacementAlgorithm::CoherenceTraffic && app.traffic.is_none() {
        return Err(Error::ProbeMissing);
    }
    let map = algorithm.place(&app.placement_inputs(), processors)?;
    let stats = simulate(&app.prog, &map, config)?;
    Ok(ExperimentResult {
        algorithm,
        processors,
        map,
        stats,
    })
}

/// Like [`run_placement`], but also attributes every coherence event to
/// its (address, writer-thread, victim-thread) triple through an online
/// [`AttrCollector`]. The statistics are bit-identical to
/// [`run_placement`]'s — attribution observes, never perturbs. Without
/// the `obs` feature the collector comes back empty (see
/// [`placesim_machine::attribution_enabled`]).
///
/// # Errors
///
/// Propagates placement and simulation errors; see [`Error`].
pub fn run_placement_attributed(
    app: &PreparedApp,
    algorithm: PlacementAlgorithm,
    processors: usize,
    acfg: AttributionConfig,
) -> Result<(ExperimentResult, AttrCollector), Error> {
    if algorithm == PlacementAlgorithm::CoherenceTraffic && app.traffic.is_none() {
        return Err(Error::ProbeMissing);
    }
    let map = algorithm.place(&app.placement_inputs(), processors)?;
    let (stats, attr) = simulate_attributed(&app.prog, &map, &app.config, acfg)?;
    Ok((
        ExperimentResult {
            algorithm,
            processors,
            map,
            stats,
        },
        attr,
    ))
}

/// Runs every `(algorithm, processors)` combination in parallel worker
/// threads and returns results in deterministic (algorithm-major) order.
///
/// A failing combination short-circuits the sweep: the shared stop flag
/// inside [`try_parallel_map`] keeps workers from claiming further
/// combinations, so a bad grid fails in one simulation's time rather
/// than the whole grid's.
///
/// # Errors
///
/// Returns the lowest-indexed (algorithm-major) error encountered.
pub fn run_sweep(
    app: &PreparedApp,
    algorithms: &[PlacementAlgorithm],
    processor_counts: &[usize],
) -> Result<Vec<ExperimentResult>, Error> {
    let combos: Vec<(PlacementAlgorithm, usize)> = algorithms
        .iter()
        .flat_map(|&a| processor_counts.iter().map(move |&p| (a, p)))
        .collect();
    try_parallel_map(&combos, |&(algo, p)| run_placement(app, algo, p))
}

/// Like [`run_sweep`], but also returns a validated [`RunManifest`]
/// recording the architecture, generation parameters, wall time and a
/// per-combination summary — the machine-readable receipt of the sweep.
///
/// # Errors
///
/// Same as [`run_sweep`].
pub fn run_sweep_manifested(
    app: &PreparedApp,
    algorithms: &[PlacementAlgorithm],
    processor_counts: &[usize],
) -> Result<(Vec<ExperimentResult>, RunManifest), Error> {
    let timer = SpanTimer::start("run_sweep");
    let results = run_sweep(app, algorithms, processor_counts)?;
    let mut manifest = RunManifest::new("run_sweep", app.spec.name, &app.config);
    manifest.scale = Some(app.gen.scale);
    manifest.seed = Some(app.gen.seed);
    manifest.wall_secs = timer.elapsed_secs();
    manifest.entries = results
        .iter()
        .map(|r| ManifestEntry::from_stats(r.algorithm.paper_name(), r.processors, &r.stats))
        .collect();
    Ok((results, manifest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use placesim_workloads::{spec, GenOptions};

    fn tiny(name: &str) -> PreparedApp {
        PreparedApp::prepare(
            &spec(name).unwrap(),
            &GenOptions {
                scale: 0.002,
                seed: 3,
            },
        )
    }

    #[test]
    fn prepare_builds_everything() {
        let app = tiny("water");
        assert_eq!(app.threads(), 16);
        assert_eq!(app.lengths.len(), 16);
        assert_eq!(app.config.cache_size(), 32 * 1024);
        assert!(app.traffic.is_none());
    }

    #[test]
    fn prepare_fused_analysis_matches_trace_analysis() {
        let app = tiny("gauss");
        assert_eq!(app.sharing, SharingAnalysis::measure(&app.prog));
        assert_eq!(app.sharing, SharingAnalysis::measure_reference(&app.prog));
    }

    #[test]
    fn run_placement_produces_stats() {
        let app = tiny("water");
        let r = run_placement(&app, PlacementAlgorithm::Random, 4).unwrap();
        assert_eq!(r.processors, 4);
        assert_eq!(r.stats.total_refs(), app.prog.total_refs());
        assert!(r.execution_time() > 0);
    }

    #[test]
    fn coherence_requires_probe() {
        let mut app = tiny("water");
        assert!(matches!(
            run_placement(&app, PlacementAlgorithm::CoherenceTraffic, 4),
            Err(Error::ProbeMissing)
        ));
        let probe = app.run_probe().unwrap();
        assert!(probe.stats.total_refs() > 0);
        let r = run_placement(&app, PlacementAlgorithm::CoherenceTraffic, 4).unwrap();
        assert_eq!(r.processors, 4);
    }

    #[test]
    fn sweep_covers_grid_in_order() {
        let app = tiny("barnes-hut");
        let algos = [PlacementAlgorithm::Random, PlacementAlgorithm::LoadBal];
        let procs = [2, 4];
        let results = run_sweep(&app, &algos, &procs).unwrap();
        assert_eq!(results.len(), 4);
        let got: Vec<(PlacementAlgorithm, usize)> = results
            .iter()
            .map(|r| (r.algorithm, r.processors))
            .collect();
        assert_eq!(
            got,
            vec![
                (PlacementAlgorithm::Random, 2),
                (PlacementAlgorithm::Random, 4),
                (PlacementAlgorithm::LoadBal, 2),
                (PlacementAlgorithm::LoadBal, 4),
            ]
        );
    }

    #[test]
    fn manifested_sweep_records_every_combination() {
        let app = tiny("water");
        let algos = [PlacementAlgorithm::Random, PlacementAlgorithm::LoadBal];
        let procs = [2, 4];
        let (results, manifest) = run_sweep_manifested(&app, &algos, &procs).unwrap();
        assert_eq!(manifest.entries.len(), results.len());
        assert_eq!(manifest.app, "water");
        assert_eq!(manifest.scale, Some(0.002));
        assert_eq!(manifest.seed, Some(3));
        for (r, e) in results.iter().zip(&manifest.entries) {
            assert_eq!(e.algorithm, r.algorithm.paper_name());
            assert_eq!(e.execution_time, r.execution_time());
        }
        RunManifest::validate(&manifest.to_json()).unwrap();
    }

    #[test]
    fn explicit_config_overrides_cache() {
        let app = tiny("water");
        let inf = placesim_machine::ArchConfig::infinite_cache();
        let r = run_placement_with_config(&app, PlacementAlgorithm::LoadBal, 2, &inf).unwrap();
        assert_eq!(r.stats.total_misses().conflicts(), 0);
    }
}
