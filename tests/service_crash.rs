//! Out-of-process crash proof for `placesim-cli serve`: SIGKILL the
//! daemon mid-job, restart it on the same directory, and require the
//! resumed job's result bytes to be identical to an uninterrupted
//! daemon's. The durable queue — jobs journaled before acknowledgment,
//! results journaled before exposure — is what makes this hold.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_placesim-cli");

/// A sweep big enough that a single-worker daemon is reliably still
/// mid-job when the kill lands (~12 cells at scale 0.01).
const SWEEP_JOB: &str = "{\"op\": \"sweep\", \"app\": \"water\", \"scale\": 0.01, \
                         \"seed\": 3, \
                         \"algorithms\": [\"RANDOM\", \"LOAD-BAL\", \"SHARE-REFS\", \"SHARE-ADDR\"], \
                         \"processors\": [2, 4, 8]}";

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "placesim-service-crash-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn spawn_daemon(dir: &Path) -> Child {
    Command::new(BIN)
        .args(["serve", "--dir"])
        .arg(dir)
        .args(["--workers", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon must spawn")
}

/// Polls until the daemon's socket accepts a connection.
fn connect(dir: &Path) -> UnixStream {
    let socket = dir.join("service.sock");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match UnixStream::connect(&socket) {
            Ok(s) => return s,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("daemon never came up on {}: {e}", socket.display()),
        }
    }
}

/// One request, one response line.
fn roundtrip(stream: &mut UnixStream, request: &str) -> String {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_owned()
}

/// Pulls a `"field": <number>` value out of a response line. The
/// responses are canonical JSON from our own writer, so the textual
/// probe is exact.
fn u64_field(resp: &str, field: &str) -> u64 {
    let pat = format!("\"{field}\": ");
    let at = resp
        .find(&pat)
        .unwrap_or_else(|| panic!("no {field} in {resp}"));
    resp[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

fn submit(stream: &mut UnixStream, job: &str) -> u64 {
    let resp = roundtrip(
        stream,
        &format!("{{\"schema\": \"placesim-service-v1\", \"op\": \"submit\", \"job\": {job}}}"),
    );
    assert!(resp.contains("\"ok\": true"), "submit refused: {resp}");
    u64_field(&resp, "id")
}

/// Waits for a job and returns the full response line (which embeds
/// the result bytes as a JSON string field).
fn wait_done(stream: &mut UnixStream, id: u64) -> String {
    let resp = roundtrip(
        stream,
        &format!(
            "{{\"schema\": \"placesim-service-v1\", \"op\": \"wait\", \"id\": {id}, \
             \"timeout_ms\": 600000}}"
        ),
    );
    assert!(
        resp.contains("\"state\": \"done\""),
        "job {id} not done: {resp}"
    );
    resp
}

fn shutdown(dir: &Path, mut child: Child) {
    let mut stream = connect(dir);
    let resp = roundtrip(
        &mut stream,
        "{\"schema\": \"placesim-service-v1\", \"op\": \"shutdown\"}",
    );
    assert!(resp.contains("\"ok\": true"), "{resp}");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success(), "daemon exited {status}");
                return;
            }
            None if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            None => {
                child.kill().ok();
                panic!("daemon ignored shutdown for 60 s");
            }
        }
    }
}

/// Extracts the embedded result string (still escaped) from a wait
/// response: the bytes between `"result": "` and the closing quote of
/// that field. Comparing the escaped form compares the raw bytes.
fn result_bytes(resp: &str) -> String {
    let pat = "\"result\": \"";
    let start = resp.find(pat).expect("response carries a result") + pat.len();
    let tail = &resp[start..];
    let mut end = 0;
    let bytes = tail.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => break,
            _ => end += 1,
        }
    }
    tail[..end].to_owned()
}

#[test]
fn sigkilled_daemon_resumes_to_byte_identical_results() {
    // Reference: an uninterrupted daemon runs the job to completion.
    let ref_dir = tmp_dir("ref");
    let ref_child = spawn_daemon(&ref_dir);
    let mut stream = connect(&ref_dir);
    let ref_id = submit(&mut stream, SWEEP_JOB);
    let expected = result_bytes(&wait_done(&mut stream, ref_id));
    assert!(expected.contains("sweep"), "implausible result: {expected}");
    drop(stream);
    shutdown(&ref_dir, ref_child);

    // Victim: same job, but SIGKILL lands while the worker is mid-sweep.
    // The submit was acknowledged, so the job is journaled; nothing else
    // about the in-flight attempt survives the kill.
    let dir = tmp_dir("victim");
    let mut child = spawn_daemon(&dir);
    let mut stream = connect(&dir);
    let id = submit(&mut stream, SWEEP_JOB);
    std::thread::sleep(Duration::from_millis(100));
    child.kill().expect("SIGKILL");
    child.wait().unwrap();
    drop(stream);

    // The kill must not have left a completed result behind — the job
    // journal has the acceptance record only.
    let journal = std::fs::read_to_string(dir.join("service.journal")).unwrap();
    assert!(journal.contains("\"kind\": \"job\""), "job record missing");
    assert!(
        !journal.contains("\"kind\": \"done\""),
        "kill landed too late; tighten the sleep"
    );

    // Restart on the same directory: the stale lockfile (dead PID) is
    // reclaimed, the journaled job re-enqueued and run to completion.
    let child = spawn_daemon(&dir);
    let mut stream = connect(&dir);
    let resumed = result_bytes(&wait_done(&mut stream, id));
    assert_eq!(
        resumed, expected,
        "resumed result must be byte-identical to the uninterrupted run"
    );
    drop(stream);
    shutdown(&dir, child);

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}
