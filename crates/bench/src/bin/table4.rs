//! Regenerates the paper's Table 4: static sharing vs. measured
//! coherence traffic with one thread per processor.

fn main() {
    placesim_bench::print_table4();
}
