//! Pluggable cache-coherence protocols.
//!
//! The paper's machine runs a full-map directory **write-invalidate**
//! (MSI) protocol. ROADMAP item 2 asks whether the 1994 placement result
//! survives richer protocols, so the protocol is now a first-class
//! parameter: a [`Protocol`] selector carried by
//! [`crate::ArchConfig`] and a [`CoherenceProtocol`] trait describing
//! each protocol's state lattice and transition table, with three
//! instances:
//!
//! * [`WriteInvalidate`] — the paper's MSI machine, bit-identical to the
//!   pre-refactor engine (pinned by differential proptests).
//! * [`Mesi`] — Illinois MESI. A read miss with no other holders fills
//!   **Exclusive** (clean); a later write hit upgrades E→M *silently*,
//!   with no directory transaction, eliminating upgrade traffic on
//!   private lines.
//! * [`Dragon`] — write-update. A write to a shared line sends the new
//!   data to every sharer (they keep their copies); nothing is ever
//!   invalidated, so invalidation misses are structurally zero and the
//!   coherence cost shows up as update traffic instead.
//!
//! # Dispatch
//!
//! The engines dispatch on the `Copy` [`Protocol`] enum (a monomorphic
//! `match` — the write-invalidate arm is literally the pre-refactor
//! code, which is what makes the bit-identity guarantee checkable). The
//! trait objects returned by [`Protocol::semantics`] are the *table*
//! those matches implement; `lattice_matches_dispatch` in this module's
//! tests pins the two representations to each other over every
//! `(protocol, state)` pair.

use crate::cache::LineState;
use std::fmt;
use std::str::FromStr;

/// Coherence-protocol selector carried by [`crate::ArchConfig`].
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Protocol {
    /// Directory write-invalidate MSI (the paper's machine, the default).
    #[default]
    Wi,
    /// Illinois MESI: exclusive-clean fills, silent E→M upgrades.
    Mesi,
    /// Dragon write-update: sharers receive updates, never invalidations.
    Dragon,
}

/// Error for an unrecognized protocol name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProtocol(pub String);

impl fmt::Display for UnknownProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown protocol '{}' (expected wi, mesi or dragon)",
            self.0
        )
    }
}

impl std::error::Error for UnknownProtocol {}

impl Protocol {
    /// All protocols, in presentation order.
    pub const ALL: [Protocol; 3] = [Protocol::Wi, Protocol::Mesi, Protocol::Dragon];

    /// Canonical lowercase name (the CLI `--protocol` vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            Protocol::Wi => "wi",
            Protocol::Mesi => "mesi",
            Protocol::Dragon => "dragon",
        }
    }

    /// The protocol's transition-table description.
    pub fn semantics(self) -> &'static dyn CoherenceProtocol {
        match self {
            Protocol::Wi => &WriteInvalidate,
            Protocol::Mesi => &Mesi,
            Protocol::Dragon => &Dragon,
        }
    }

    /// Hot-path transition table: what a write hit on a resident line in
    /// `state` does. Monomorphic twin of
    /// [`CoherenceProtocol::write_hit`].
    ///
    /// # Panics
    ///
    /// Panics on a `(protocol, state)` pair outside the protocol's
    /// lattice (e.g. an Exclusive line under write-invalidate) — such a
    /// state indicates engine corruption, never valid input.
    #[inline]
    pub fn write_hit(self, state: LineState) -> WriteHit {
        match (self, state) {
            (_, LineState::Modified) => WriteHit::Hit,
            (Protocol::Wi | Protocol::Mesi, LineState::Shared) => WriteHit::Upgrade,
            (Protocol::Mesi | Protocol::Dragon, LineState::Exclusive) => {
                // Silent local E→M: the holder is exclusive, so no
                // directory transaction and no upgrade is counted.
                WriteHit::Silent(LineState::Modified)
            }
            (Protocol::Dragon, LineState::Shared | LineState::SharedDirty) => WriteHit::Update,
            (p, s) => unreachable!("line state {s:?} outside the {p} lattice"),
        }
    }

    /// Whether a read miss with no other holders fills exclusive-clean
    /// ([`LineState::Exclusive`]) instead of [`LineState::Shared`].
    #[inline]
    pub fn exclusive_clean_fill(self) -> bool {
        !matches!(self, Protocol::Wi)
    }

    /// What a write (miss or shared hit) does to remote holders.
    #[inline]
    pub fn remote_write_action(self) -> RemoteAction {
        match self {
            Protocol::Wi | Protocol::Mesi => RemoteAction::Invalidate,
            Protocol::Dragon => RemoteAction::Update,
        }
    }

    /// State a dirty/exclusive holder drops to when a remote processor
    /// read-fills the line. Dragon keeps dirty ownership
    /// ([`LineState::SharedDirty`]); everyone else goes clean Shared.
    #[inline]
    pub fn downgrade_target(self, state: LineState) -> LineState {
        match (self, state) {
            (Protocol::Dragon, LineState::Modified) => LineState::SharedDirty,
            _ => LineState::Shared,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Protocol {
    type Err = UnknownProtocol;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "wi" => Ok(Protocol::Wi),
            "mesi" => Ok(Protocol::Mesi),
            "dragon" => Ok(Protocol::Dragon),
            other => Err(UnknownProtocol(other.to_string())),
        }
    }
}

/// What a write hit does, per the protocol's transition table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteHit {
    /// Sufficient permission already (Modified): plain hit.
    Hit,
    /// Local state transition with no bus/directory transaction
    /// (MESI/Dragon silent E→M).
    Silent(LineState),
    /// Coherence upgrade: the directory must invalidate remote sharers.
    Upgrade,
    /// Write-update: the new data is propagated to remote sharers, who
    /// keep their copies.
    Update,
}

/// What remote holders experience when another processor writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteAction {
    /// Their copy is removed (write-invalidate family).
    Invalidate,
    /// Their copy is refreshed in place (write-update family).
    Update,
}

/// A coherence protocol: its state lattice, write-hit transition table
/// and remote-action set. [`Protocol::semantics`] maps each selector to
/// its instance; the engines use the monomorphic [`Protocol`] methods,
/// which tests pin to this table.
pub trait CoherenceProtocol {
    /// The selector this instance implements.
    fn id(&self) -> Protocol;

    /// Human-readable protocol name.
    fn name(&self) -> &'static str;

    /// The states a resident line may legally occupy (the lattice; the
    /// auditor rejects anything outside it).
    fn lattice(&self) -> &'static [LineState];

    /// Transition-table entry for a write hit on a line in `state`.
    fn write_hit(&self, state: LineState) -> WriteHit;

    /// Whether a sole-holder read miss fills exclusive-clean.
    fn exclusive_clean_fill(&self) -> bool;

    /// The action a write sends to remote holders.
    fn remote_write_action(&self) -> RemoteAction;

    /// Target state when a dirty/exclusive holder is downgraded by a
    /// remote read.
    fn downgrade_target(&self, state: LineState) -> LineState;
}

/// The paper's directory write-invalidate MSI protocol.
pub struct WriteInvalidate;

/// Illinois MESI (exclusive-clean state, silent E→M upgrades).
pub struct Mesi;

/// Dragon write-update (sharers receive updates, never invalidations).
pub struct Dragon;

macro_rules! delegate_protocol {
    ($ty:ty, $id:expr, $name:literal, $lattice:expr) => {
        impl CoherenceProtocol for $ty {
            fn id(&self) -> Protocol {
                $id
            }

            fn name(&self) -> &'static str {
                $name
            }

            fn lattice(&self) -> &'static [LineState] {
                $lattice
            }

            fn write_hit(&self, state: LineState) -> WriteHit {
                $id.write_hit(state)
            }

            fn exclusive_clean_fill(&self) -> bool {
                $id.exclusive_clean_fill()
            }

            fn remote_write_action(&self) -> RemoteAction {
                $id.remote_write_action()
            }

            fn downgrade_target(&self, state: LineState) -> LineState {
                $id.downgrade_target(state)
            }
        }
    };
}

delegate_protocol!(
    WriteInvalidate,
    Protocol::Wi,
    "write-invalidate",
    &[LineState::Shared, LineState::Modified]
);
delegate_protocol!(
    Mesi,
    Protocol::Mesi,
    "MESI",
    &[LineState::Shared, LineState::Exclusive, LineState::Modified]
);
delegate_protocol!(
    Dragon,
    Protocol::Dragon,
    "Dragon",
    &[
        LineState::Shared,
        LineState::SharedDirty,
        LineState::Exclusive,
        LineState::Modified,
    ]
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Protocol::ALL {
            assert_eq!(p.as_str().parse::<Protocol>().unwrap(), p);
            assert_eq!(p.to_string(), p.as_str());
            assert_eq!(p.semantics().id(), p);
        }
        let err = "mosi".parse::<Protocol>().unwrap_err();
        assert!(err.to_string().contains("mosi"));
        assert_eq!(Protocol::default(), Protocol::Wi);
    }

    #[test]
    fn lattice_matches_dispatch() {
        // The trait table and the monomorphic enum dispatch must agree on
        // every (protocol, state) pair inside the lattice.
        for p in Protocol::ALL {
            let sem = p.semantics();
            for &state in sem.lattice() {
                assert_eq!(sem.write_hit(state), p.write_hit(state), "{p} {state:?}");
            }
            assert_eq!(sem.exclusive_clean_fill(), p.exclusive_clean_fill());
            assert_eq!(sem.remote_write_action(), p.remote_write_action());
            for &state in sem.lattice() {
                assert_eq!(sem.downgrade_target(state), p.downgrade_target(state));
            }
        }
    }

    #[test]
    fn wi_table_is_the_paper_machine() {
        assert_eq!(Protocol::Wi.write_hit(LineState::Shared), WriteHit::Upgrade);
        assert_eq!(Protocol::Wi.write_hit(LineState::Modified), WriteHit::Hit);
        assert!(!Protocol::Wi.exclusive_clean_fill());
        assert_eq!(Protocol::Wi.remote_write_action(), RemoteAction::Invalidate);
        assert_eq!(
            Protocol::Wi.downgrade_target(LineState::Modified),
            LineState::Shared
        );
    }

    #[test]
    fn mesi_silent_upgrade_and_exclusive_fill() {
        assert_eq!(
            Protocol::Mesi.write_hit(LineState::Exclusive),
            WriteHit::Silent(LineState::Modified)
        );
        assert_eq!(
            Protocol::Mesi.write_hit(LineState::Shared),
            WriteHit::Upgrade
        );
        assert!(Protocol::Mesi.exclusive_clean_fill());
    }

    #[test]
    fn dragon_updates_and_keeps_dirty_ownership() {
        assert_eq!(
            Protocol::Dragon.write_hit(LineState::Shared),
            WriteHit::Update
        );
        assert_eq!(
            Protocol::Dragon.write_hit(LineState::SharedDirty),
            WriteHit::Update
        );
        assert_eq!(Protocol::Dragon.remote_write_action(), RemoteAction::Update);
        assert_eq!(
            Protocol::Dragon.downgrade_target(LineState::Modified),
            LineState::SharedDirty
        );
        assert_eq!(
            Protocol::Dragon.downgrade_target(LineState::Exclusive),
            LineState::Shared
        );
    }

    #[test]
    #[should_panic(expected = "outside the wi lattice")]
    fn illegal_state_panics() {
        let _ = Protocol::Wi.write_hit(LineState::Exclusive);
    }
}
