//! Paper-shape assertions: the qualitative results of Thekkath & Eggers
//! must hold on the synthetic suite at reduced scale.
//!
//! These tests assert *shapes* (who wins, what stays constant, orders of
//! magnitude), never absolute cycle counts.

use placesim::run_placement_with_config;
use placesim_repro::prelude::*;

fn opts() -> GenOptions {
    GenOptions {
        scale: 0.02,
        seed: 1994,
    }
}

/// §4.1: for applications with large thread-length deviation, LOAD-BAL
/// beats RANDOM.
///
/// RANDOM is a distribution, not a number: a single draw can get lucky
/// and land within a percent of balanced (observed on locusroute at
/// seed 1994), which says nothing about the paper's expectation-level
/// claim. So LOAD-BAL must beat the *median* of several independent
/// random placements.
#[test]
fn load_balancing_beats_random_on_skewed_apps() {
    for name in ["fft", "locusroute"] {
        let app = PreparedApp::prepare(&spec(name).unwrap(), &opts());
        let p = 8.min(app.threads() / 2);
        let lb = placesim::run_placement(&app, PlacementAlgorithm::LoadBal, p).unwrap();
        let mut random_times: Vec<u64> = (0..5u64)
            .map(|i| {
                let inputs = app.placement_inputs().with_seed(app.gen.seed + i);
                let map = PlacementAlgorithm::Random.place(&inputs, p).unwrap();
                placesim_repro::machine::simulate(&app.prog, &map, &app.config)
                    .unwrap()
                    .execution_time()
            })
            .collect();
        random_times.sort_unstable();
        let median = random_times[random_times.len() / 2];
        assert!(
            lb.execution_time() < median,
            "{name}: LOAD-BAL {} should beat median RANDOM {} (draws: {random_times:?})",
            lb.execution_time(),
            median
        );
    }
}

/// §4.1: for applications with small thread-length deviation (e.g.
/// Barnes-Hut at 7%), no placement does appreciably better than any
/// other.
#[test]
fn uniform_length_apps_are_placement_insensitive() {
    let app = PreparedApp::prepare(&spec("barnes-hut").unwrap(), &opts());
    let algos = [
        PlacementAlgorithm::Random,
        PlacementAlgorithm::LoadBal,
        PlacementAlgorithm::ShareRefs,
        PlacementAlgorithm::MinShare,
    ];
    let results = placesim::run_sweep(&app, &algos, &[4]).unwrap();
    let times: Vec<u64> = results.iter().map(|r| r.execution_time()).collect();
    let max = *times.iter().max().unwrap() as f64;
    let min = *times.iter().min().unwrap() as f64;
    assert!(max / min < 1.15, "barnes-hut spread too large: {times:?}");
}

/// §4.2, the central negative result: compulsory and invalidation misses
/// are (fairly) constant across placement algorithms.
#[test]
fn compulsory_and_invalidation_misses_are_placement_insensitive() {
    for name in ["water", "locusroute", "gauss"] {
        let app = PreparedApp::prepare(&spec(name).unwrap(), &opts());
        let p = 8.min(app.threads() / 2);
        let algos = [
            PlacementAlgorithm::Random,
            PlacementAlgorithm::LoadBal,
            PlacementAlgorithm::ShareRefs,
            PlacementAlgorithm::MaxWrites,
            PlacementAlgorithm::MinShare,
        ];
        let results = placesim::run_sweep(&app, &algos, &[p]).unwrap();
        let ci: Vec<u64> = results
            .iter()
            .map(|r| r.stats.total_misses().compulsory_plus_invalidation())
            .collect();
        let max = *ci.iter().max().unwrap() as f64;
        let min = (*ci.iter().min().unwrap() as f64).max(1.0);
        assert!(
            max / min < 1.35,
            "{name}: compulsory+invalidation varies too much across placements: {ci:?}"
        );
    }
}

/// §4.2 / Table 4: runtime coherence traffic is far smaller than the
/// statically counted shared references.
#[test]
fn dynamic_traffic_is_orders_below_static_sharing() {
    for name in ["water", "mp3d", "gauss", "pverify"] {
        let mut app = PreparedApp::prepare(&spec(name).unwrap(), &opts());
        let probe = app.run_probe().unwrap();
        let static_refs = app.sharing.total_pairwise_shared_refs();
        let dynamic = probe.total_traffic() + probe.compulsory_misses();
        assert!(
            static_refs > 5 * dynamic,
            "{name}: static {static_refs} vs dynamic {dynamic}"
        );
    }
}

/// §4.3 / Table 5: with an 8 MB cache (no conflicts), the best sharing
/// placement is still roughly on par with LOAD-BAL — co-location never
/// produces a large win.
#[test]
fn infinite_cache_does_not_rescue_sharing_placement() {
    let mut app = PreparedApp::prepare(&spec("water").unwrap(), &opts());
    app.run_probe().unwrap();
    let infinite = ArchConfig::infinite_cache();
    let p = 4;
    let lb = run_placement_with_config(&app, PlacementAlgorithm::LoadBal, p, &infinite).unwrap();
    assert_eq!(lb.stats.total_misses().conflicts(), 0);

    let mut best_sharing = u64::MAX;
    for algo in PlacementAlgorithm::SHARING_BASED {
        let r = run_placement_with_config(&app, algo, p, &infinite).unwrap();
        assert_eq!(r.stats.total_misses().conflicts(), 0, "{algo}");
        best_sharing = best_sharing.min(r.execution_time());
    }
    let ratio = best_sharing as f64 / lb.execution_time() as f64;
    assert!(
        (0.85..=1.25).contains(&ratio),
        "best sharing vs LOAD-BAL with infinite cache: {ratio}"
    );
}

/// Figure 5's structural observations: decreasing threads per processor
/// (more processors) reduces conflict misses and shifts inter-thread
/// conflicts toward intra-thread conflicts.
#[test]
fn fewer_threads_per_processor_reduce_conflicts() {
    let app = PreparedApp::prepare(&spec("mp3d").unwrap(), &opts());
    let r2 = placesim::run_placement(&app, PlacementAlgorithm::Random, 2).unwrap();
    let r8 = placesim::run_placement(&app, PlacementAlgorithm::Random, 8).unwrap();
    let m2 = r2.stats.total_misses();
    let m8 = r8.stats.total_misses();
    assert!(
        m8.inter_thread_conflict < m2.inter_thread_conflict,
        "inter-thread conflicts should drop: p=2 {} vs p=8 {}",
        m2.inter_thread_conflict,
        m8.inter_thread_conflict
    );
}

/// MIN-SHARE exists to bound the sharing effect from below; it must
/// never be the best algorithm by a large margin (it can tie when
/// sharing is irrelevant, which is the paper's whole point).
#[test]
fn min_share_never_wins_big() {
    for name in ["water", "fft"] {
        let app = PreparedApp::prepare(&spec(name).unwrap(), &opts());
        let p = 4;
        let ms = placesim::run_placement(&app, PlacementAlgorithm::MinShare, p).unwrap();
        let lb = placesim::run_placement(&app, PlacementAlgorithm::LoadBal, p).unwrap();
        assert!(
            ms.execution_time() as f64 > 0.9 * lb.execution_time() as f64,
            "{name}: MIN-SHARE should not beat LOAD-BAL by >10%"
        );
    }
}

/// §4.1: the paper observed occasional thrashing when two co-located
/// threads ping-pong the same cache set and notes "set associative
/// caching would address this problem". Verify the generalized cache
/// does: associativity strictly reduces conflict misses on a
/// conflict-prone run, without touching compulsory misses.
#[test]
fn associativity_reduces_conflicts() {
    let app = PreparedApp::prepare(&spec("locusroute").unwrap(), &opts());
    let p = 2; // most threads per processor = most cache pressure
    let direct = placesim::run_placement(&app, PlacementAlgorithm::Random, p).unwrap();

    let assoc4 = ArchConfig::builder()
        .cache_size(app.config.cache_size())
        .associativity(4)
        .build()
        .unwrap();
    let four_way = run_placement_with_config(&app, PlacementAlgorithm::Random, p, &assoc4).unwrap();

    let md = direct.stats.total_misses();
    let m4 = four_way.stats.total_misses();
    assert!(
        m4.conflicts() < md.conflicts(),
        "4-way {} should cut conflicts vs direct-mapped {}",
        m4.conflicts(),
        md.conflicts()
    );
    assert_eq!(
        m4.compulsory, md.compulsory,
        "compulsory misses are placement/assoc invariant"
    );
}

/// A stronger sharing optimizer changes nothing: Kernighan–Lin
/// refinement of SHARE-REFS improves the in-cluster sharing objective
/// yet still fails to beat LOAD-BAL — the objective, not the optimizer,
/// is what the paper refutes.
#[test]
fn kl_refinement_does_not_rescue_sharing_placement() {
    use placesim_repro::placement::kl;

    let app = PreparedApp::prepare(&spec("locusroute").unwrap(), &opts());
    let p = 8;
    let seed = placesim::run_placement(&app, PlacementAlgorithm::ShareRefs, p).unwrap();
    let before = kl::in_cluster_weight(&seed.map, app.sharing.pair_refs_matrix());
    let (kl_map, after) = kl::refine(&seed.map, app.sharing.pair_refs_matrix()).unwrap();
    assert!(after >= before, "refinement is monotone in the objective");

    let kl_time = placesim_repro::machine::simulate(&app.prog, &kl_map, &app.config)
        .unwrap()
        .execution_time();
    let lb = placesim::run_placement(&app, PlacementAlgorithm::LoadBal, p).unwrap();
    assert!(
        kl_time as f64 >= 0.97 * lb.execution_time() as f64,
        "KL-refined sharing placement ({kl_time}) must not meaningfully beat LOAD-BAL ({})",
        lb.execution_time()
    );
}
