//! Reference-stream emission: turns a thread's plan into a trace.

use crate::gen::patterns::{SharedPlan, WritePolicy};
use crate::gen::regions::{self, Layout};
use crate::gen::GenOptions;
use crate::spec::AppSpec;
use placesim_trace::{AddrCounts, Address, MemRef, ThreadTrace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// References per private address (temporal locality of private data).
pub(crate) const PRIVATE_RPA: f64 = 30.0;
/// Write probability for private accesses.
const PRIVATE_WRITE_FRACTION: f64 = 0.35;

/// Number of distinct private words a thread of `n_instr` instructions
/// needs (used by [`Layout`] packing and by emission).
pub(crate) fn private_slot_count(spec: &AppSpec, n_instr: u64) -> u64 {
    let n_data = n_instr as f64 * spec.data_ratio;
    let private_refs = n_data * (1.0 - spec.shared_percent / 100.0);
    ((private_refs / PRIVATE_RPA).ceil() as u64).max(1)
}

/// The emission skeleton of one application, shared by all of its
/// threads.
///
/// The reference emitter decides *when* to emit a data reference (a
/// fractional accumulator stepped by `data_ratio` per instruction) and
/// whether it is shared or private (a second accumulator stepped by
/// `shared_percent / 100` per data reference) with floating-point state
/// that depends only on the spec and the instruction index — never on
/// the thread or an rng draw. Instruction-fetch addresses are likewise
/// positional (`code_addr(i % CODE_WORDS)`). So the entire interleaved
/// stream *except* the data addresses is identical across threads, and
/// can be materialized once per application: `skeleton` holds the packed
/// instruction words with placeholder slots where data references go,
/// and each thread reproduces its trace with a handful of bulk slice
/// copies plus one rng-driven word per data reference.
pub(crate) struct Schedule {
    /// Packed interleaved stream for the longest thread: instruction
    /// words in place, `0` placeholders at data-reference slots.
    skeleton: Vec<u64>,
    /// `instr_pos[i]` = skeleton index of instruction `i`'s fetch, i.e.
    /// `i +` (data references scheduled before it); the last entry is
    /// the full skeleton length. A thread of `n` instructions consumes
    /// exactly `skeleton[..instr_pos[n]]`.
    instr_pos: Vec<u32>,
    /// Skeleton index of each data-reference ordinal.
    data_pos: Vec<u32>,
    /// Shared (`true`) or private per data-reference ordinal.
    shared_at: Vec<bool>,
}

impl Schedule {
    /// Replays the reference emitter's accumulator loop for the longest
    /// thread; shorter threads consume a prefix.
    ///
    /// # Panics
    ///
    /// Panics if `max_instr` exceeds `u32::MAX` (a single synthetic
    /// thread that long is far beyond any paper-scale configuration).
    pub(crate) fn build(spec: &AppSpec, max_instr: u64) -> Schedule {
        assert!(
            max_instr <= u32::MAX as u64,
            "thread length {max_instr} exceeds the emission schedule's u32 range"
        );
        let period = instr_period();
        let mask = period.len() - 1;
        let shared_frac = spec.shared_percent / 100.0;
        let estimate = max_instr as usize + (max_instr as f64 * spec.data_ratio) as usize + 8;
        let mut skeleton: Vec<u64> = Vec::with_capacity(estimate);
        let mut instr_pos: Vec<u32> = Vec::with_capacity(max_instr as usize + 1);
        let mut data_pos: Vec<u32> = Vec::new();
        let mut shared_at = Vec::new();
        let mut data_acc = 0.0f64;
        let mut shared_acc = 0.0f64;
        for i in 0..max_instr as usize {
            instr_pos.push(skeleton.len() as u32);
            skeleton.push(period[i & mask].raw());
            data_acc += spec.data_ratio;
            while data_acc >= 1.0 {
                data_acc -= 1.0;
                shared_acc += shared_frac;
                if shared_acc >= 1.0 {
                    shared_acc -= 1.0;
                    shared_at.push(true);
                } else {
                    shared_at.push(false);
                }
                data_pos.push(skeleton.len() as u32);
                skeleton.push(0);
            }
        }
        instr_pos.push(skeleton.len() as u32);
        assert!(
            skeleton.len() <= u32::MAX as usize,
            "emission skeleton exceeds the u32 position range"
        );
        Schedule {
            skeleton,
            instr_pos,
            data_pos,
            shared_at,
        }
    }
}

/// The packed instruction-address cycle (see [`regions::code_addr`]):
/// instruction `i` fetches `period[i % CODE_WORDS]`.
pub(crate) fn instr_period() -> Vec<Address> {
    (0..regions::CODE_WORDS)
        .map(|i| Address::new(regions::code_addr(i)))
        .collect()
}

/// Emits the full reference trace of one thread, plus its access
/// profile: one [`AddrCounts`] entry per run, recorded as the run is
/// generated (so profiling costs no second pass over the trace).
///
/// The stream interleaves one instruction fetch per instruction with
/// `data_ratio` data references per instruction (fractional accumulator),
/// and splits data references between the shared plan and the private
/// region according to `shared_percent`. Both shared and private data
/// are visited in *runs* — several consecutive references to the same
/// address — sized to hit the references-per-address targets. Runs are
/// what make the sharing *sequential* in the paper's sense.
///
/// This is the throughput-tuned emitter; it must stay bit-identical to
/// [`crate::gen::reference`] (enforced by differential tests there).
/// The wins over the reference, none of which touch an rng draw:
///
/// * everything positional — the data-emission timetable, the cyclic
///   instruction-fetch addresses, and the stream interleave — is
///   precomputed once per application in [`Schedule`], so each thread's
///   packed stream is a few bulk slice copies (one per barrier-separated
///   phase) instead of one `push` per fetch;
/// * only the data slots are written per thread, in schedule order, so
///   the rng draw sequence is exactly the reference's;
/// * the slot → address region mapping (a non-power-of-two modulo) runs
///   once per *run* instead of once per reference, since the address is
///   constant while a run lasts — likewise the `OwnRange` ownership
///   test.
pub fn emit_thread(
    spec: &AppSpec,
    tid: usize,
    n_instr: u64,
    plan: &SharedPlan,
    layout: &Layout,
    opts: &GenOptions,
    schedule: &Schedule,
) -> (ThreadTrace, Vec<AddrCounts>) {
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ (0xEA17 + tid as u64 * 0x9E37_79B9));
    let end = schedule.instr_pos[n_instr as usize] as usize;
    let n_data = end - n_instr as usize;

    // Barrier-separated phases (paper §4.2: "many of the coarse-grain
    // programs use barriers to separate different phases of work").
    // Every thread emits exactly `phases - 1` barriers, at proportional
    // positions, so the machine's global barriers always match up. The
    // reference emits barrier `nb - 1` immediately before the fetch of
    // instruction `nb * n_instr / phases` — i.e. at skeleton position
    // `instr_pos` of that fetch — which for a zero-length thread
    // degenerates to all barriers at the stream's end, exactly like the
    // reference's end-of-thread barrier flush.
    let phases = spec.phases.max(1) as u64;
    let n_barriers = (phases - 1) as usize;
    let barrier_pos: Vec<usize> = (1..phases)
        .map(|nb| schedule.instr_pos[(nb * n_instr / phases) as usize] as usize)
        .collect();

    // Assemble the packed stream: skeleton chunks with barriers spliced
    // in between. `extend_from_slice` on `u64` words is a memcpy.
    let mut packed: Vec<u64> = Vec::with_capacity(end + n_barriers);
    let mut prev = 0usize;
    for (ordinal, &pb) in barrier_pos.iter().enumerate() {
        packed.extend_from_slice(&schedule.skeleton[prev..pb]);
        packed.push(MemRef::barrier(ordinal as u64).pack());
        prev = pb;
    }
    packed.extend_from_slice(&schedule.skeleton[prev..end]);

    // Fill the data slots in schedule order — the reference's rng draw
    // order. A slot's final position is its skeleton position plus the
    // number of barriers spliced in before it.
    let mut shared = RunCursor::new(spec.refs_per_shared_addr, plan.policy);
    let mut private = RunCursor::new(PRIVATE_RPA, WritePolicy::Bernoulli(PRIVATE_WRITE_FRACTION));
    let mut shared_idx = 0usize;
    let mut private_slot = 0u64;
    let mut shift = 0usize;
    let mut next_barrier = 0usize;
    for ref_idx in 0..n_data {
        let slot = schedule.data_pos[ref_idx] as usize;
        while next_barrier < n_barriers && barrier_pos[next_barrier] <= slot {
            shift += 1;
            next_barrier += 1;
        }
        let word = if schedule.shared_at[ref_idx] {
            shared.next(
                &mut rng,
                || {
                    let s = plan.slots[shared_idx % plan.slots.len()];
                    shared_idx += 1;
                    s
                },
                regions::shared_addr,
            )
        } else {
            private.next(
                &mut rng,
                || {
                    let s = private_slot;
                    private_slot += 1;
                    s
                },
                |slot| layout.private_addr(tid, slot),
            )
        };
        packed[slot + shift] = word;
    }
    let reads = shared.reads + private.reads;
    let writes = shared.writes + private.writes;

    let trace = ThreadTrace::from_packed_counts(packed, n_instr, reads, writes, n_barriers as u64);
    let mut access = shared.finish();
    access.extend(private.finish());
    (trace, access)
}

/// Emits run-structured accesses: each new address is referenced for a
/// run of roughly `refs_per_addr` consecutive data slots. Everything
/// per-run — the mapped address, its pre-packed load/store words, and
/// the `OwnRange` ownership test — is computed when the run starts and
/// reused for its length; each finished run is appended to `runs`, the
/// thread's access profile. Write probabilities are clamped once at
/// construction (the reference clamps per draw — same value, same
/// decisions).
struct RunCursor {
    refs_per_addr: f64,
    policy: WritePolicy,
    read_word: u64,
    write_word: u64,
    in_own_range: bool,
    remaining: u64,
    run_is_write: bool,
    cur: AddrCounts,
    started: bool,
    reads: u64,
    writes: u64,
    runs: Vec<AddrCounts>,
}

impl RunCursor {
    fn new(refs_per_addr: f64, policy: WritePolicy) -> Self {
        let policy = match policy {
            WritePolicy::Bernoulli(p) => WritePolicy::Bernoulli(p.clamp(0.0, 1.0)),
            WritePolicy::RunLevel(p) => WritePolicy::RunLevel(p.clamp(0.0, 1.0)),
            WritePolicy::OwnRange { lo, hi, prob } => WritePolicy::OwnRange {
                lo,
                hi,
                prob: prob.clamp(0.0, 1.0),
            },
        };
        RunCursor {
            refs_per_addr: refs_per_addr.max(1.0),
            policy,
            read_word: 0,
            write_word: 0,
            in_own_range: false,
            remaining: 0,
            run_is_write: false,
            cur: AddrCounts::new(0),
            started: false,
            reads: 0,
            writes: 0,
            runs: Vec::new(),
        }
    }

    /// Returns the next reference's packed word, pulling a fresh slot
    /// from `next_slot` and mapping it through `map` when the current
    /// run ends. `map` must be pure — it is skipped while a run lasts.
    #[inline]
    fn next<F: FnMut() -> u64, M: Fn(u64) -> u64>(
        &mut self,
        rng: &mut SmallRng,
        mut next_slot: F,
        map: M,
    ) -> u64 {
        if self.remaining == 0 {
            let current = next_slot();
            let addr = Address::new(map(current));
            self.read_word = MemRef::read(addr).pack();
            self.write_word = MemRef::write(addr).pack();
            let jitter = rng.gen_range(0.5..1.5);
            self.remaining = (self.refs_per_addr * jitter).round().max(1.0) as u64;
            match self.policy {
                WritePolicy::RunLevel(p) => {
                    self.run_is_write = rng.gen_bool(p);
                }
                WritePolicy::OwnRange { lo, hi, .. } => {
                    self.in_own_range = (lo..hi).contains(&current);
                }
                WritePolicy::Bernoulli(_) => {}
            }
            if self.started {
                self.runs.push(self.cur);
            }
            self.started = true;
            self.cur = AddrCounts::new(addr.raw());
        }
        self.remaining -= 1;
        let write = match self.policy {
            WritePolicy::Bernoulli(p) => rng.gen_bool(p),
            // Short-circuit order matches the reference: the rng is
            // consulted only for slots inside the owned range.
            WritePolicy::OwnRange { prob, .. } => self.in_own_range && rng.gen_bool(prob),
            WritePolicy::RunLevel(_) => self.run_is_write,
        };
        self.cur.bump(write);
        if write {
            self.writes += 1;
            self.write_word
        } else {
            self.reads += 1;
            self.read_word
        }
    }

    /// Flushes the active run and returns the access profile.
    fn finish(mut self) -> Vec<AddrCounts> {
        if self.started {
            self.runs.push(self.cur);
        }
        self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use placesim_trace::RefKind;

    fn small_opts() -> GenOptions {
        GenOptions {
            scale: 0.01,
            seed: 11,
        }
    }

    fn emit_with(spec: &AppSpec, n_instr: u64, plan: &SharedPlan, layout: &Layout) -> ThreadTrace {
        let schedule = Schedule::build(spec, n_instr);
        emit_thread(spec, 0, n_instr, plan, layout, &small_opts(), &schedule).0
    }

    fn emit_one(spec: &AppSpec, n_instr: u64) -> (ThreadTrace, Layout) {
        let plan = SharedPlan {
            slots: (0..100).collect(),
            policy: WritePolicy::Bernoulli(spec.pattern.write_fraction()),
            target_refs: 0,
        };
        let layout = Layout::new(vec![private_slot_count(spec, n_instr)]);
        let t = emit_with(spec, n_instr, &plan, &layout);
        (t, layout)
    }

    fn is_shared(addr: u64) -> bool {
        (regions::SHARED_BASE..regions::PRIVATE_BASE).contains(&addr)
    }

    #[test]
    fn instruction_count_is_exact() {
        let spec = suite::water();
        let (t, _) = emit_one(&spec, 10_000);
        assert_eq!(t.instr_len(), 10_000);
    }

    #[test]
    fn data_ratio_is_respected() {
        let spec = suite::water();
        let (t, _) = emit_one(&spec, 20_000);
        let ratio = t.data_len() as f64 / t.instr_len() as f64;
        assert!(
            (ratio / spec.data_ratio - 1.0).abs() < 0.02,
            "ratio {ratio}"
        );
    }

    #[test]
    fn shared_fraction_is_respected() {
        let spec = suite::mp3d(); // 82.6% shared
        let (t, _) = emit_one(&spec, 50_000);
        let shared = t
            .iter()
            .filter(|r| r.kind.is_data() && is_shared(r.addr.raw()))
            .count() as f64;
        let frac = 100.0 * shared / t.data_len() as f64;
        assert!((frac - spec.shared_percent).abs() < 2.0, "frac {frac}");
    }

    #[test]
    fn shared_accesses_come_in_runs() {
        let spec = suite::topopt(); // 611 refs per shared address
        let (t, _) = emit_one(&spec, 30_000);
        let addrs: Vec<u64> = t
            .iter()
            .filter(|r| r.kind.is_data() && is_shared(r.addr.raw()))
            .map(|r| r.addr.raw())
            .collect();
        let mut runs = 1u64;
        for w in addrs.windows(2) {
            if w[0] != w[1] {
                runs += 1;
            }
        }
        let mean_run = addrs.len() as f64 / runs as f64;
        assert!(mean_run > 50.0, "mean shared run {mean_run}");
    }

    #[test]
    fn writes_present_per_policy() {
        let spec = suite::mp3d();
        let (t, _) = emit_one(&spec, 20_000);
        let writes = t.iter().filter(|r| r.kind == RefKind::Write).count();
        assert!(writes > 0);
    }

    #[test]
    fn access_profile_matches_trace_recount() {
        use std::collections::BTreeMap;
        let spec = suite::mp3d();
        let plan = SharedPlan {
            slots: (0..60).collect(),
            policy: WritePolicy::Bernoulli(spec.pattern.write_fraction()),
            target_refs: 0,
        };
        let layout = Layout::new(vec![private_slot_count(&spec, 25_000)]);
        let schedule = Schedule::build(&spec, 25_000);
        let (t, access) = emit_thread(&spec, 0, 25_000, &plan, &layout, &small_opts(), &schedule);
        let mut from_trace: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for r in t.iter().filter(|r| r.kind.is_data()) {
            let e = from_trace.entry(r.addr.raw()).or_default();
            if r.kind.is_write() {
                e.1 += 1;
            } else {
                e.0 += 1;
            }
        }
        let mut from_access: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for run in &access {
            let e = from_access.entry(run.addr).or_default();
            e.0 += run.reads as u64;
            e.1 += run.writes as u64;
        }
        assert_eq!(from_trace, from_access);
    }

    #[test]
    fn own_range_policy_confines_shared_writes() {
        let spec = suite::barnes_hut();
        let plan = SharedPlan {
            slots: (0..200).collect(),
            policy: WritePolicy::OwnRange {
                lo: 0,
                hi: 10,
                prob: 0.9,
            },
            target_refs: 0,
        };
        let layout = Layout::new(vec![private_slot_count(&spec, 30_000)]);
        let t = emit_with(&spec, 30_000, &plan, &layout);
        for r in t.iter() {
            if r.kind == RefKind::Write && is_shared(r.addr.raw()) {
                let slot = (r.addr.raw() - regions::SHARED_BASE) / regions::SHARED_STRIDE;
                assert!(slot < 10, "shared write outside own range: slot {slot}");
            }
        }
    }

    #[test]
    fn private_addresses_stay_in_own_region() {
        let spec = suite::water();
        let plan = SharedPlan {
            slots: vec![0],
            policy: WritePolicy::Bernoulli(0.2),
            target_refs: 0,
        };
        let counts = vec![
            private_slot_count(&spec, 5_000),
            private_slot_count(&spec, 5_000),
            private_slot_count(&spec, 5_000),
            private_slot_count(&spec, 5_000),
        ];
        let layout = Layout::new(counts);
        let schedule = Schedule::build(&spec, 5_000);
        let (t3, _) = emit_thread(&spec, 3, 5_000, &plan, &layout, &small_opts(), &schedule);
        for r in t3.iter() {
            let a = r.addr.raw();
            if a >= regions::PRIVATE_BASE {
                assert!(
                    a >= layout.private_base(3) && a < layout.end(),
                    "address {a:#x} outside thread 3's region"
                );
            }
        }
    }

    #[test]
    fn private_slot_count_formula() {
        let spec = suite::water(); // 71.7% shared, ratio 0.30
        let n = private_slot_count(&spec, 100_000);
        let expect = (100_000.0_f64 * 0.30 * (1.0 - 0.717) / 30.0).ceil() as u64;
        assert_eq!(n, expect);
        assert!(private_slot_count(&spec, 0) >= 1);
    }
}
