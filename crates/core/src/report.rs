//! Plain-text table rendering and the experiment report aggregator.
//!
//! [`TextTable`] does the alignment work for every table the workspace
//! prints. [`Report`] ingests many `placesim-metrics-v1` manifests
//! (see [`crate::manifest`]), groups their entries by
//! `(app, protocol, algorithm, processors)`, and renders paper-style
//! comparison tables — execution time, the four-way miss taxonomy,
//! update traffic, and a normalized-to-RANDOM column (computed within
//! each protocol, so the per-protocol vs-RANDOM sections answer whether
//! the 1994 result survives MESI/Dragon) — as aligned text and as JSON
//! (`placesim-report-v1`). [`Report::compare`] diffs two reports for
//! the CI regression gate.

use crate::manifest::RunManifest;
use placesim_obs::json::JsonWriter;
use std::collections::BTreeMap;
use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use placesim::report::TextTable;
///
/// let mut t = TextTable::new(["app", "time"]);
/// t.row(["water", "123"]);
/// let s = t.to_string();
/// assert!(s.contains("water"));
/// assert!(s.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the column count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }

        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    write!(f, "  ")?;
                }
                // Right-align numeric-looking cells, left-align the rest.
                if cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-')
                    && cell.chars().all(|c| !c.is_ascii_alphabetic() || c == 'e')
                {
                    write!(f, "{cell:>w$}", w = w)?;
                } else {
                    write!(f, "{cell:<w$}", w = w)?;
                }
            }
            writeln!(f)
        };

        write_row(f, &self.headers)?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a mean ± dev% pair the way the paper's Table 2 prints them.
pub fn fmt_mean_dev(mean: f64, dev_percent: f64) -> String {
    format!("{mean:.0} ({dev_percent:.1}%)")
}

/// Formats a count in thousands (the paper's "(in 1000s)" columns).
pub fn fmt_thousands(x: f64) -> String {
    format!("{:.0}", x / 1000.0)
}

/// Renders `value` as an ASCII bar where `full` maps to `width`
/// characters (the paper's figures are bar charts; this keeps the
/// terminal output evocative of them). Values beyond `full` are capped
/// with a `+` marker.
pub fn ascii_bar(value: f64, full: f64, width: usize) -> String {
    if !(value.is_finite() && full > 0.0) || value <= 0.0 {
        return String::new();
    }
    let frac = value / full;
    if frac > 1.0 {
        let mut bar = "#".repeat(width);
        bar.push('+');
        bar
    } else {
        "#".repeat((frac * width as f64).round().max(1.0) as usize)
    }
}

/// Schema tag stamped into every JSON report.
pub const REPORT_SCHEMA: &str = "placesim-report-v1";

/// Aggregated results for one `(app, protocol, algorithm, processors)`
/// cell: means over every manifest entry that landed in it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportGroup {
    /// Application (trace) name, from the manifest header.
    pub app: String,
    /// Coherence protocol the manifest's config simulated
    /// (`wi`/`mesi`/`dragon`).
    pub protocol: String,
    /// Placement algorithm label.
    pub algorithm: String,
    /// Processor count.
    pub processors: usize,
    /// Entries aggregated into this cell.
    pub runs: u64,
    /// Mean execution time in cycles.
    pub execution_time: f64,
    /// Mean total references.
    pub total_refs: f64,
    /// Mean total misses.
    pub total_misses: f64,
    /// Mean data-reference miss rate.
    pub miss_rate: f64,
    /// Mean coherence traffic.
    pub coherence_traffic: f64,
    /// Mean write-update traffic (Dragon's `UpdateTraffic` column; zero
    /// under the write-invalidate protocols).
    pub update_traffic: f64,
    /// Mean miss taxonomy: `[compulsory, intra-thread conflict,
    /// inter-thread conflict, invalidation]` (the paper's order).
    pub miss_taxonomy: [f64; 4],
    /// Mean execution time divided by the RANDOM group's, within the
    /// same `(app, protocol, processors)`; `None` when no RANDOM group
    /// exists there.
    pub vs_random: Option<f64>,
}

/// One metric that moved past the regression threshold between a
/// baseline report and the current one.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Application name of the regressed group.
    pub app: String,
    /// Algorithm of the regressed group.
    pub algorithm: String,
    /// Processor count of the regressed group.
    pub processors: usize,
    /// Which metric regressed (`execution_time` or `total_misses`).
    pub metric: &'static str,
    /// The baseline's mean value.
    pub baseline: f64,
    /// The current mean value.
    pub current: f64,
    /// Relative increase in percent (positive = worse).
    pub delta_pct: f64,
}

/// A grid cell that produced no result: a supervised sweep exhausted
/// its retries (or hit a deterministic error) and degraded the cell
/// into an annotated hole instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportHole {
    /// Application name of the missing cell.
    pub app: String,
    /// Algorithm of the missing cell.
    pub algorithm: String,
    /// Processor count of the missing cell.
    pub processors: usize,
    /// Attempts spent before giving up.
    pub attempts: u64,
    /// Why the cell failed.
    pub reason: String,
}

/// An aggregated experiment report; see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Groups in deterministic `(app, algorithm, processors)` order.
    pub groups: Vec<ReportGroup>,
    /// Manifests ingested.
    pub manifests: usize,
    /// Cells that produced no result (additive in `placesim-report-v1`;
    /// empty for reports built from healthy manifests).
    pub holes: Vec<ReportHole>,
}

impl Report {
    /// Aggregates parsed manifests into grouped means. Entries sharing
    /// `(app, protocol, algorithm, processors)` across (or within)
    /// manifests are averaged; groups come out sorted by that key.
    pub fn from_manifests<'a, I>(manifests: I) -> Self
    where
        I: IntoIterator<Item = &'a RunManifest>,
    {
        #[derive(Default)]
        struct Acc {
            runs: u64,
            execution_time: f64,
            total_refs: f64,
            total_misses: f64,
            miss_rate: f64,
            coherence_traffic: f64,
            update_traffic: f64,
            taxonomy: [f64; 4],
        }
        let mut cells: BTreeMap<(String, String, String, usize), Acc> = BTreeMap::new();
        let mut count = 0usize;
        for m in manifests {
            count += 1;
            let protocol = m.config.protocol().as_str();
            for e in &m.entries {
                let acc = cells
                    .entry((
                        m.app.clone(),
                        protocol.to_owned(),
                        e.algorithm.clone(),
                        e.processors,
                    ))
                    .or_default();
                acc.runs += 1;
                acc.execution_time += e.execution_time as f64;
                acc.total_refs += e.total_refs as f64;
                acc.total_misses += e.total_misses as f64;
                acc.miss_rate += e.miss_rate;
                acc.coherence_traffic += e.coherence_traffic as f64;
                acc.update_traffic += e.update_traffic as f64;
                for (slot, v) in acc.taxonomy.iter_mut().zip([
                    e.misses.compulsory,
                    e.misses.intra_thread_conflict,
                    e.misses.inter_thread_conflict,
                    e.misses.invalidation,
                ]) {
                    *slot += v as f64;
                }
            }
        }

        // The RANDOM baseline mean per (app, protocol, processors), for
        // the paper's normalized columns. Keying by protocol keeps the
        // vs-RANDOM ratios meaningful per protocol: a Dragon run is
        // normalized against Dragon's RANDOM baseline, not MESI's.
        let mut random_time: BTreeMap<(String, String, usize), f64> = BTreeMap::new();
        for ((app, protocol, algo, procs), acc) in &cells {
            if algo == "RANDOM" && acc.runs > 0 {
                random_time.insert(
                    (app.clone(), protocol.clone(), *procs),
                    acc.execution_time / acc.runs as f64,
                );
            }
        }

        let groups = cells
            .into_iter()
            .map(|((app, protocol, algorithm, processors), acc)| {
                let n = acc.runs as f64;
                let execution_time = acc.execution_time / n;
                let vs_random = random_time
                    .get(&(app.clone(), protocol.clone(), processors))
                    .filter(|&&r| r > 0.0)
                    .map(|&r| execution_time / r);
                ReportGroup {
                    app,
                    protocol,
                    algorithm,
                    processors,
                    runs: acc.runs,
                    execution_time,
                    total_refs: acc.total_refs / n,
                    total_misses: acc.total_misses / n,
                    miss_rate: acc.miss_rate / n,
                    coherence_traffic: acc.coherence_traffic / n,
                    update_traffic: acc.update_traffic / n,
                    miss_taxonomy: acc.taxonomy.map(|t| t / n),
                    vs_random,
                }
            })
            .collect();
        Report {
            groups,
            manifests: count,
            holes: Vec::new(),
        }
    }

    /// Renders the paper-style comparison table as aligned text.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new([
            "app",
            "protocol",
            "algorithm",
            "procs",
            "runs",
            "exec-time",
            "vs-RANDOM",
            "miss-rate",
            "compulsory",
            "intra-conf",
            "inter-conf",
            "inval",
            "traffic",
            "updates",
        ]);
        for g in &self.groups {
            t.row([
                g.app.clone(),
                g.protocol.clone(),
                g.algorithm.clone(),
                g.processors.to_string(),
                g.runs.to_string(),
                fmt_f(g.execution_time, 0),
                g.vs_random.map_or_else(|| "-".to_owned(), |r| fmt_f(r, 3)),
                fmt_f(g.miss_rate, 4),
                fmt_f(g.miss_taxonomy[0], 0),
                fmt_f(g.miss_taxonomy[1], 0),
                fmt_f(g.miss_taxonomy[2], 0),
                fmt_f(g.miss_taxonomy[3], 0),
                fmt_f(g.coherence_traffic, 0),
                fmt_f(g.update_traffic, 0),
            ]);
        }
        let mut out = format!(
            "{t}({} groups from {} manifests)\n",
            self.groups.len(),
            self.manifests
        );
        if !self.holes.is_empty() {
            out.push_str(&format!(
                "{} hole(s) — cells with no result:\n",
                self.holes.len()
            ));
            for h in &self.holes {
                out.push_str(&format!(
                    "  {} {} p={} after {} attempt(s): {}\n",
                    h.app, h.algorithm, h.processors, h.attempts, h.reason
                ));
            }
        }
        out
    }

    /// The report as a `placesim-report-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", REPORT_SCHEMA);
        w.field_u64("manifests", self.manifests as u64);
        w.key("groups");
        w.begin_array();
        for g in &self.groups {
            w.begin_object();
            w.field_str("app", &g.app);
            w.field_str("protocol", &g.protocol);
            w.field_str("algorithm", &g.algorithm);
            w.field_u64("processors", g.processors as u64);
            w.field_u64("runs", g.runs);
            w.field_f64("execution_time", g.execution_time);
            w.field_f64("total_refs", g.total_refs);
            w.field_f64("total_misses", g.total_misses);
            w.field_f64("miss_rate", g.miss_rate);
            w.field_f64("coherence_traffic", g.coherence_traffic);
            w.field_f64("update_traffic", g.update_traffic);
            w.field_f64("compulsory", g.miss_taxonomy[0]);
            w.field_f64("intra_thread_conflict", g.miss_taxonomy[1]);
            w.field_f64("inter_thread_conflict", g.miss_taxonomy[2]);
            w.field_f64("invalidation", g.miss_taxonomy[3]);
            w.key("vs_random");
            match g.vs_random {
                Some(r) => w.value_f64(r),
                None => w.value_null(),
            }
            w.end_object();
        }
        w.end_array();
        w.key("holes");
        w.begin_array();
        for h in &self.holes {
            w.begin_object();
            w.field_str("app", &h.app);
            w.field_str("algorithm", &h.algorithm);
            w.field_u64("processors", h.processors as u64);
            w.field_u64("attempts", h.attempts);
            w.field_str("reason", &h.reason);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Flags groups whose mean execution time or miss count grew more
    /// than `threshold_pct` percent over the matching group in
    /// `baseline`. Groups present on only one side are not compared.
    pub fn compare(&self, baseline: &Report, threshold_pct: f64) -> Vec<Regression> {
        let base: BTreeMap<(&str, &str, &str, usize), &ReportGroup> = baseline
            .groups
            .iter()
            .map(|g| {
                (
                    (
                        g.app.as_str(),
                        g.protocol.as_str(),
                        g.algorithm.as_str(),
                        g.processors,
                    ),
                    g,
                )
            })
            .collect();
        let mut out = Vec::new();
        for g in &self.groups {
            let Some(b) = base.get(&(
                g.app.as_str(),
                g.protocol.as_str(),
                g.algorithm.as_str(),
                g.processors,
            )) else {
                continue;
            };
            for (metric, base_v, cur_v) in [
                ("execution_time", b.execution_time, g.execution_time),
                ("total_misses", b.total_misses, g.total_misses),
            ] {
                if base_v <= 0.0 {
                    continue;
                }
                let delta_pct = (cur_v - base_v) / base_v * 100.0;
                if delta_pct > threshold_pct {
                    out.push(Regression {
                        app: g.app.clone(),
                        algorithm: g.algorithm.clone(),
                        processors: g.processors,
                        metric,
                        baseline: base_v,
                        current: cur_v,
                        delta_pct,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "12345"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric column right-aligned: "1" ends at same column as "12345".
        let a_end = lines[2].trim_end().len();
        let b_end = lines[3].trim_end().len();
        assert_eq!(a_end, b_end);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        let s = t.to_string();
        assert!(s.contains('x'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.234, 2), "1.23");
        assert_eq!(fmt_mean_dev(527_000.0, 14.0), "527000 (14.0%)");
        assert_eq!(fmt_thousands(527_400.0), "527");
    }

    #[test]
    fn bars() {
        assert_eq!(ascii_bar(0.5, 1.0, 10), "#####");
        assert_eq!(ascii_bar(1.0, 1.0, 10), "##########");
        assert_eq!(ascii_bar(1.4, 1.0, 10), "##########+");
        assert_eq!(ascii_bar(0.001, 1.0, 10), "#", "tiny values still visible");
        assert_eq!(ascii_bar(0.0, 1.0, 10), "");
        assert_eq!(ascii_bar(f64::NAN, 1.0, 10), "");
    }
}

#[cfg(test)]
mod aggregator_tests {
    use super::*;
    use crate::manifest::{ManifestEntry, RunManifest};
    use placesim_machine::{ArchConfig, MissBreakdown, Protocol};
    use placesim_obs::json;

    fn entry(algorithm: &str, processors: usize, time: u64, misses: u64) -> ManifestEntry {
        ManifestEntry {
            algorithm: algorithm.into(),
            processors,
            execution_time: time,
            total_refs: 1000,
            total_misses: misses,
            miss_rate: misses as f64 / 1000.0,
            coherence_traffic: misses / 2,
            update_traffic: 0,
            misses: MissBreakdown {
                compulsory: misses,
                ..MissBreakdown::default()
            },
        }
    }

    fn manifest(app: &str, entries: Vec<ManifestEntry>) -> RunManifest {
        let mut m = RunManifest::new("test", app, &ArchConfig::paper_default());
        m.entries = entries;
        m
    }

    fn manifest_with_protocol(
        app: &str,
        protocol: Protocol,
        entries: Vec<ManifestEntry>,
    ) -> RunManifest {
        let mut builder = ArchConfig::builder();
        builder.protocol(protocol);
        let config = builder.build().unwrap();
        let mut m = RunManifest::new("test", app, &config);
        m.entries = entries;
        m
    }

    #[test]
    fn groups_and_averages_across_manifests() {
        let a = manifest("water", vec![entry("RANDOM", 4, 1000, 100)]);
        let b = manifest("water", vec![entry("RANDOM", 4, 2000, 200)]);
        let c = manifest("water", vec![entry("SHARE-REFS", 4, 900, 90)]);
        let report = Report::from_manifests([&a, &b, &c]);
        assert_eq!(report.manifests, 3);
        assert_eq!(report.groups.len(), 2);

        let random = &report.groups[0];
        assert_eq!(random.algorithm, "RANDOM");
        assert_eq!(random.runs, 2);
        assert_eq!(random.execution_time, 1500.0);
        assert_eq!(random.vs_random, Some(1.0));

        let share = &report.groups[1];
        assert_eq!(share.algorithm, "SHARE-REFS");
        assert_eq!(share.vs_random, Some(0.6));
        assert_eq!(share.miss_taxonomy[0], 90.0);
    }

    #[test]
    fn normalization_needs_matching_app_and_processors() {
        let a = manifest("water", vec![entry("RANDOM", 4, 1000, 100)]);
        let b = manifest("water", vec![entry("LOAD-BAL", 8, 500, 50)]);
        let c = manifest("mp3d", vec![entry("LOAD-BAL", 4, 500, 50)]);
        let report = Report::from_manifests([&a, &b, &c]);
        for g in &report.groups {
            if g.algorithm == "RANDOM" {
                assert_eq!(g.vs_random, Some(1.0));
            } else {
                assert_eq!(g.vs_random, None, "{}/{}p", g.app, g.processors);
            }
        }
    }

    #[test]
    fn text_and_json_renderings_are_complete() {
        let a = manifest(
            "water",
            vec![
                entry("RANDOM", 4, 1000, 100),
                entry("SHARE-REFS", 4, 800, 90),
            ],
        );
        let report = Report::from_manifests([&a]);
        let text = report.render_text();
        assert!(text.contains("SHARE-REFS"));
        assert!(text.contains("vs-RANDOM"));
        assert!(text.contains("0.800"));

        let js = report.to_json();
        let doc = json::parse(&js).unwrap();
        assert_eq!(
            doc.get("schema").and_then(json::JsonValue::as_str),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(
            doc.get("groups")
                .and_then(json::JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn compare_flags_only_regressions_past_threshold() {
        let base = Report::from_manifests([&manifest(
            "water",
            vec![
                entry("RANDOM", 4, 1000, 100),
                entry("LOAD-BAL", 4, 1000, 100),
            ],
        )]);
        // LOAD-BAL regresses 10% in time; RANDOM improves (never flagged).
        let cur = Report::from_manifests([&manifest(
            "water",
            vec![
                entry("RANDOM", 4, 900, 100),
                entry("LOAD-BAL", 4, 1100, 100),
            ],
        )]);
        let regressions = cur.compare(&base, 2.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].algorithm, "LOAD-BAL");
        assert_eq!(regressions[0].metric, "execution_time");
        assert!((regressions[0].delta_pct - 10.0).abs() < 1e-9);

        // Identical reports never regress, at any threshold.
        assert!(cur.compare(&cur, 0.0).is_empty());
        // Within threshold: not flagged.
        assert!(cur.compare(&base, 15.0).is_empty());
    }

    #[test]
    fn holes_are_rendered_and_serialized() {
        let a = manifest("water", vec![entry("RANDOM", 4, 1000, 100)]);
        let mut report = Report::from_manifests([&a]);
        // Healthy report: empty holes array, no holes section in text.
        let js = report.to_json();
        let doc = json::parse(&js).unwrap();
        assert_eq!(
            doc.get("holes")
                .and_then(json::JsonValue::as_array)
                .map(<[_]>::len),
            Some(0)
        );
        assert!(!report.render_text().contains("hole"));

        report.holes.push(ReportHole {
            app: "water".into(),
            algorithm: "LOAD-BAL".into(),
            processors: 8,
            attempts: 3,
            reason: "worker panicked: chaos: injected worker panic".into(),
        });
        let text = report.render_text();
        assert!(text.contains("1 hole(s)"));
        assert!(text.contains("LOAD-BAL p=8 after 3 attempt(s)"));
        let doc = json::parse(&report.to_json()).unwrap();
        let holes = doc
            .get("holes")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        assert_eq!(holes.len(), 1);
        assert_eq!(
            holes[0].get("reason").and_then(json::JsonValue::as_str),
            Some("worker panicked: chaos: injected worker panic")
        );
    }

    #[test]
    fn protocols_group_separately_with_per_protocol_random_baselines() {
        // Same app/algorithm/processors under three protocols: each
        // protocol gets its own group and its own RANDOM baseline.
        let mut dragon_random = entry("RANDOM", 4, 2000, 100);
        dragon_random.update_traffic = 64;
        let mut dragon_share = entry("SHARE-REFS", 4, 1000, 90);
        dragon_share.update_traffic = 32;
        let manifests = [
            manifest_with_protocol(
                "water",
                Protocol::Wi,
                vec![
                    entry("RANDOM", 4, 1000, 100),
                    entry("SHARE-REFS", 4, 900, 90),
                ],
            ),
            manifest_with_protocol(
                "water",
                Protocol::Mesi,
                vec![
                    entry("RANDOM", 4, 800, 100),
                    entry("SHARE-REFS", 4, 600, 90),
                ],
            ),
            manifest_with_protocol("water", Protocol::Dragon, vec![dragon_random, dragon_share]),
        ];
        let report = Report::from_manifests(manifests.iter());
        assert_eq!(report.groups.len(), 6);

        let vs = |protocol: &str, algorithm: &str| {
            report
                .groups
                .iter()
                .find(|g| g.protocol == protocol && g.algorithm == algorithm)
                .unwrap_or_else(|| panic!("missing group {protocol}/{algorithm}"))
                .vs_random
                .unwrap()
        };
        assert_eq!(vs("wi", "RANDOM"), 1.0);
        assert_eq!(vs("wi", "SHARE-REFS"), 0.9);
        assert_eq!(vs("mesi", "SHARE-REFS"), 0.75);
        // Dragon normalizes against Dragon's RANDOM (2000), not WI's.
        assert_eq!(vs("dragon", "SHARE-REFS"), 0.5);

        let dragon = report
            .groups
            .iter()
            .find(|g| g.protocol == "dragon" && g.algorithm == "SHARE-REFS")
            .unwrap();
        assert_eq!(dragon.update_traffic, 32.0);

        // Renderings carry the protocol column and update traffic.
        let text = report.render_text();
        assert!(text.contains("protocol"));
        assert!(text.contains("dragon"));
        let doc = json::parse(&report.to_json()).unwrap();
        let groups = doc
            .get("groups")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        assert!(groups.iter().any(|g| {
            g.get("protocol").and_then(json::JsonValue::as_str) == Some("dragon")
                && g.get("update_traffic").and_then(json::JsonValue::as_f64) == Some(32.0)
        }));

        // compare() never crosses protocols: WI's slower times against a
        // MESI baseline would flag regressions if the key conflated them.
        let wi_only = Report::from_manifests([&manifests[0]]);
        let mesi_only = Report::from_manifests([&manifests[1]]);
        assert!(wi_only.compare(&mesi_only, 0.0).is_empty());
    }

    #[test]
    fn compare_ignores_unmatched_groups() {
        let base =
            Report::from_manifests([&manifest("water", vec![entry("RANDOM", 4, 1000, 100)])]);
        let cur = Report::from_manifests([&manifest("mp3d", vec![entry("RANDOM", 4, 9000, 900)])]);
        assert!(cur.compare(&base, 2.0).is_empty());
    }
}
