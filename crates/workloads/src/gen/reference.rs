//! The pre-overhaul generator, kept verbatim as a reference path.
//!
//! Like `placesim_machine::reference` for the simulation engine, this
//! module preserves the original single-threaded emitter so that the
//! optimised path in [`crate::gen::emit`] can be differentially tested
//! (`generate` must stay bit-identical) and benchmarked against it
//! (`bench_pipeline`'s "old front-end"). The shared planning stages
//! (lengths, address plans, layout) are reused — the overhaul changed
//! only emission, and sharing the inputs means the comparison cannot
//! drift.

use crate::gen::patterns::{SharedPlan, WritePolicy};
use crate::gen::regions::{self, Layout};
use crate::gen::{emit, length, patterns, GenOptions};
use crate::spec::AppSpec;
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// References per private address (temporal locality of private data).
const PRIVATE_RPA: f64 = emit::PRIVATE_RPA;
/// Write probability for private accesses.
const PRIVATE_WRITE_FRACTION: f64 = 0.35;

/// Generates the synthetic trace of one application through the
/// original, unoptimised emitter.
///
/// Bit-identical to [`crate::generate`] by construction; the
/// differential tests below and the pipeline benchmark both rely on
/// that.
///
/// # Panics
///
/// Panics if `opts.scale` is not strictly positive or the spec has zero
/// threads.
pub fn generate(spec: &AppSpec, opts: &GenOptions) -> ProgramTrace {
    assert!(opts.scale > 0.0, "scale must be positive");
    assert!(spec.threads > 0, "an application needs at least one thread");

    let lengths = length::sample_lengths(spec, opts);
    let plans = patterns::assign_addresses(spec, &lengths, opts);
    let layout = Layout::new(
        lengths
            .iter()
            .map(|&n| emit::private_slot_count(spec, n))
            .collect(),
    );
    let threads = lengths
        .iter()
        .zip(plans)
        .enumerate()
        .map(|(tid, (&n_instr, plan))| emit_thread(spec, tid, n_instr, &plan, &layout, opts))
        .collect();
    ProgramTrace::new(spec.name, threads)
}

/// The original per-thread emitter: one barrier-position division per
/// instruction, one region-mapping modulo per data reference.
fn emit_thread(
    spec: &AppSpec,
    tid: usize,
    n_instr: u64,
    plan: &SharedPlan,
    layout: &Layout,
    opts: &GenOptions,
) -> ThreadTrace {
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ (0xEA17 + tid as u64 * 0x9E37_79B9));
    let n_data = (n_instr as f64 * spec.data_ratio).round() as u64;
    let shared_frac = spec.shared_percent / 100.0;

    let mut shared = RunCursor::new(spec.refs_per_shared_addr, plan.policy);
    let mut private = RunCursor::new(PRIVATE_RPA, WritePolicy::Bernoulli(PRIVATE_WRITE_FRACTION));

    let mut trace = ThreadTrace::with_capacity((n_instr + n_data) as usize + 8);
    let mut data_acc = 0.0f64;
    let mut shared_acc = 0.0f64;
    let mut shared_idx = 0usize;
    let mut private_slot = 0u64;

    let phases = spec.phases.max(1) as u64;
    let mut next_barrier = 1u64;

    for i in 0..n_instr {
        while next_barrier < phases && i == next_barrier * n_instr / phases {
            trace.push(MemRef::barrier(next_barrier - 1));
            next_barrier += 1;
        }
        trace.push(MemRef::instr(Address::new(regions::code_addr(i))));
        data_acc += spec.data_ratio;
        while data_acc >= 1.0 {
            data_acc -= 1.0;
            shared_acc += shared_frac;
            if shared_acc >= 1.0 {
                shared_acc -= 1.0;
                let (slot, write) = shared.next(&mut rng, || {
                    let s = plan.slots[shared_idx % plan.slots.len()];
                    shared_idx += 1;
                    s
                });
                let addr = Address::new(regions::shared_addr(slot));
                trace.push(if write {
                    MemRef::write(addr)
                } else {
                    MemRef::read(addr)
                });
            } else {
                let (slot, write) = private.next(&mut rng, || {
                    let s = private_slot;
                    private_slot += 1;
                    s
                });
                let addr = Address::new(layout.private_addr(tid, slot));
                trace.push(if write {
                    MemRef::write(addr)
                } else {
                    MemRef::read(addr)
                });
            }
        }
    }
    while next_barrier < phases {
        trace.push(MemRef::barrier(next_barrier - 1));
        next_barrier += 1;
    }
    trace
}

/// The original run cursor: recomputes nothing across a run, but leaves
/// the slot → address mapping (and its modulo) to the caller per ref.
struct RunCursor {
    refs_per_addr: f64,
    policy: WritePolicy,
    current: u64,
    remaining: u64,
    run_is_write: bool,
}

impl RunCursor {
    fn new(refs_per_addr: f64, policy: WritePolicy) -> Self {
        RunCursor {
            refs_per_addr: refs_per_addr.max(1.0),
            policy,
            current: 0,
            remaining: 0,
            run_is_write: false,
        }
    }

    fn next<F: FnMut() -> u64>(&mut self, rng: &mut SmallRng, mut next_slot: F) -> (u64, bool) {
        if self.remaining == 0 {
            self.current = next_slot();
            let jitter = rng.gen_range(0.5..1.5);
            self.remaining = (self.refs_per_addr * jitter).round().max(1.0) as u64;
            if let WritePolicy::RunLevel(p) = self.policy {
                self.run_is_write = rng.gen_bool(p.clamp(0.0, 1.0));
            }
        }
        self.remaining -= 1;
        let write = match self.policy {
            WritePolicy::Bernoulli(p) => rng.gen_bool(p.clamp(0.0, 1.0)),
            WritePolicy::OwnRange { lo, hi, prob } => {
                (lo..hi).contains(&self.current) && rng.gen_bool(prob.clamp(0.0, 1.0))
            }
            WritePolicy::RunLevel(_) => self.run_is_write,
        };
        (self.current, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    /// The optimised generator must be bit-identical to this reference
    /// for every application in the suite.
    #[test]
    fn optimised_generate_matches_reference_across_suite() {
        for spec in suite::suite() {
            let opts = GenOptions {
                scale: 0.004,
                seed: 1994,
            };
            assert_eq!(
                crate::generate(&spec, &opts),
                generate(&spec, &opts),
                "{} diverged from the reference emitter",
                spec.name
            );
        }
    }

    /// Seeds and scales vary every rng draw and barrier position; the
    /// paths must still agree ref-for-ref.
    #[test]
    fn optimised_generate_matches_reference_across_seeds() {
        for (spec, scale) in [
            (suite::gauss(), 0.002),
            (suite::mp3d(), 0.01),
            (suite::topopt(), 0.01),
            (suite::barnes_hut(), 0.01),
        ] {
            for seed in [0u64, 7, 42, 0xFFFF_FFFF_FFFF_FFFF] {
                let opts = GenOptions { scale, seed };
                assert_eq!(
                    crate::generate(&spec, &opts),
                    generate(&spec, &opts),
                    "{} seed {} diverged",
                    spec.name,
                    seed
                );
            }
        }
    }
}
