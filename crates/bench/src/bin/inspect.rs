//! Inspect one application × algorithm × processor-count configuration
//! in depth: placement map, per-processor loads, cycle accounting and
//! miss components.
//!
//! ```sh
//! cargo run --release -p placesim-bench --bin inspect -- fft LOAD-BAL 4
//! ```

use placesim::report::TextTable;
use placesim::run_placement;
use placesim_bench::prepare;
use placesim_placement::{PlacementAlgorithm, PlacementQuality, ProcessorId};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "fft".into());
    let algo_name = args.next().unwrap_or_else(|| "LOAD-BAL".into());
    let processors: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let algo = PlacementAlgorithm::ALL
        .into_iter()
        .find(|a| a.paper_name().eq_ignore_ascii_case(&algo_name))
        .unwrap_or_else(|| {
            eprintln!("unknown algorithm {algo_name}; use a paper name like SHARE-REFS");
            std::process::exit(2);
        });

    let mut app = prepare(&name);
    if algo == PlacementAlgorithm::CoherenceTraffic {
        app.run_probe().expect("probe");
    }
    let r = run_placement(&app, algo, processors).expect("experiment");

    println!(
        "{name} × {} × {processors} processors — execution time {} cycles\n",
        algo.paper_name(),
        r.execution_time()
    );

    let loads = r.map.loads(&app.lengths);
    let mut t = TextTable::new([
        "proc",
        "threads",
        "load",
        "finish",
        "busy",
        "switch",
        "idle",
        "hits",
        "compulsory",
        "intra",
        "inter",
        "invalid",
    ]);
    for (i, ps) in r.stats.per_proc().iter().enumerate() {
        let cluster = r.map.threads_on(ProcessorId::from_index(i));
        t.row([
            format!("P{i}"),
            cluster.len().to_string(),
            loads[i].to_string(),
            ps.finish_time.to_string(),
            ps.busy.to_string(),
            ps.switching.to_string(),
            ps.idle.to_string(),
            ps.hits.to_string(),
            ps.misses.compulsory.to_string(),
            ps.misses.intra_thread_conflict.to_string(),
            ps.misses.inter_thread_conflict.to_string(),
            ps.misses.invalidation.to_string(),
        ]);
    }
    println!("{t}");

    let q = PlacementQuality::measure(&r.map, &app.sharing, &app.lengths);
    println!(
        "quality: sharing captured {:.1}% (write-shared {:.1}%), load imbalance {:.3}, contexts {}\n",
        100.0 * q.sharing_captured,
        100.0 * q.write_sharing_captured,
        q.load_imbalance,
        q.max_contexts
    );
    println!("placement map:\n{}", r.map);
}
