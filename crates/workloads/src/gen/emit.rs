//! Reference-stream emission: turns a thread's plan into a trace.

use crate::gen::patterns::{SharedPlan, WritePolicy};
use crate::gen::regions::{self, Layout};
use crate::gen::GenOptions;
use crate::spec::AppSpec;
use placesim_trace::{Address, MemRef, ThreadTrace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// References per private address (temporal locality of private data).
pub(crate) const PRIVATE_RPA: f64 = 30.0;
/// Write probability for private accesses.
const PRIVATE_WRITE_FRACTION: f64 = 0.35;

/// Number of distinct private words a thread of `n_instr` instructions
/// needs (used by [`Layout`] packing and by emission).
pub(crate) fn private_slot_count(spec: &AppSpec, n_instr: u64) -> u64 {
    let n_data = n_instr as f64 * spec.data_ratio;
    let private_refs = n_data * (1.0 - spec.shared_percent / 100.0);
    ((private_refs / PRIVATE_RPA).ceil() as u64).max(1)
}

/// Emits the full reference trace of one thread.
///
/// The stream interleaves one instruction fetch per instruction with
/// `data_ratio` data references per instruction (fractional accumulator),
/// and splits data references between the shared plan and the private
/// region according to `shared_percent`. Both shared and private data
/// are visited in *runs* — several consecutive references to the same
/// address — sized to hit the references-per-address targets. Runs are
/// what make the sharing *sequential* in the paper's sense.
pub fn emit_thread(
    spec: &AppSpec,
    tid: usize,
    n_instr: u64,
    plan: &SharedPlan,
    layout: &Layout,
    opts: &GenOptions,
) -> ThreadTrace {
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ (0xEA17 + tid as u64 * 0x9E37_79B9));
    let n_data = (n_instr as f64 * spec.data_ratio).round() as u64;
    let shared_frac = spec.shared_percent / 100.0;

    let mut shared = RunCursor::new(spec.refs_per_shared_addr, plan.policy);
    let mut private = RunCursor::new(PRIVATE_RPA, WritePolicy::Bernoulli(PRIVATE_WRITE_FRACTION));

    let mut trace = ThreadTrace::with_capacity((n_instr + n_data) as usize + 8);
    let mut data_acc = 0.0f64;
    let mut shared_acc = 0.0f64;
    let mut shared_idx = 0usize;
    let mut private_slot = 0u64;

    // Barrier-separated phases (paper §4.2: "many of the coarse-grain
    // programs use barriers to separate different phases of work").
    // Every thread emits exactly `phases - 1` barriers, at proportional
    // positions, so the machine's global barriers always match up.
    let phases = spec.phases.max(1) as u64;
    let mut next_barrier = 1u64;

    for i in 0..n_instr {
        while next_barrier < phases && i == next_barrier * n_instr / phases {
            trace.push(MemRef::barrier(next_barrier - 1));
            next_barrier += 1;
        }
        trace.push(MemRef::instr(Address::new(regions::code_addr(i))));
        data_acc += spec.data_ratio;
        while data_acc >= 1.0 {
            data_acc -= 1.0;
            shared_acc += shared_frac;
            if shared_acc >= 1.0 {
                shared_acc -= 1.0;
                let (slot, write) = shared.next(&mut rng, || {
                    let s = plan.slots[shared_idx % plan.slots.len()];
                    shared_idx += 1;
                    s
                });
                let addr = Address::new(regions::shared_addr(slot));
                trace.push(if write {
                    MemRef::write(addr)
                } else {
                    MemRef::read(addr)
                });
            } else {
                let (slot, write) = private.next(&mut rng, || {
                    let s = private_slot;
                    private_slot += 1;
                    s
                });
                let addr = Address::new(layout.private_addr(tid, slot));
                trace.push(if write {
                    MemRef::write(addr)
                } else {
                    MemRef::read(addr)
                });
            }
        }
    }
    // Flush barriers a zero-or-tiny-length thread never reached, so all
    // threads always cross exactly `phases - 1` barriers.
    while next_barrier < phases {
        trace.push(MemRef::barrier(next_barrier - 1));
        next_barrier += 1;
    }
    trace
}

/// Emits run-structured accesses: each new address is referenced for a
/// run of roughly `refs_per_addr` consecutive data slots.
struct RunCursor {
    refs_per_addr: f64,
    policy: WritePolicy,
    current: u64,
    remaining: u64,
    run_is_write: bool,
}

impl RunCursor {
    fn new(refs_per_addr: f64, policy: WritePolicy) -> Self {
        RunCursor {
            refs_per_addr: refs_per_addr.max(1.0),
            policy,
            current: 0,
            remaining: 0,
            run_is_write: false,
        }
    }

    /// Returns the next `(slot, is_write)`, pulling a fresh slot from
    /// `next_slot` when the current run ends.
    fn next<F: FnMut() -> u64>(&mut self, rng: &mut SmallRng, mut next_slot: F) -> (u64, bool) {
        if self.remaining == 0 {
            self.current = next_slot();
            let jitter = rng.gen_range(0.5..1.5);
            self.remaining = (self.refs_per_addr * jitter).round().max(1.0) as u64;
            if let WritePolicy::RunLevel(p) = self.policy {
                self.run_is_write = rng.gen_bool(p.clamp(0.0, 1.0));
            }
        }
        self.remaining -= 1;
        let write = match self.policy {
            WritePolicy::Bernoulli(p) => rng.gen_bool(p.clamp(0.0, 1.0)),
            WritePolicy::OwnRange { lo, hi, prob } => {
                (lo..hi).contains(&self.current) && rng.gen_bool(prob.clamp(0.0, 1.0))
            }
            WritePolicy::RunLevel(_) => self.run_is_write,
        };
        (self.current, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use placesim_trace::RefKind;

    fn small_opts() -> GenOptions {
        GenOptions {
            scale: 0.01,
            seed: 11,
        }
    }

    fn emit_one(spec: &AppSpec, n_instr: u64) -> (ThreadTrace, Layout) {
        let plan = SharedPlan {
            slots: (0..100).collect(),
            policy: WritePolicy::Bernoulli(spec.pattern.write_fraction()),
            target_refs: 0,
        };
        let layout = Layout::new(vec![private_slot_count(spec, n_instr)]);
        let t = emit_thread(spec, 0, n_instr, &plan, &layout, &small_opts());
        (t, layout)
    }

    fn is_shared(addr: u64) -> bool {
        (regions::SHARED_BASE..regions::PRIVATE_BASE).contains(&addr)
    }

    #[test]
    fn instruction_count_is_exact() {
        let spec = suite::water();
        let (t, _) = emit_one(&spec, 10_000);
        assert_eq!(t.instr_len(), 10_000);
    }

    #[test]
    fn data_ratio_is_respected() {
        let spec = suite::water();
        let (t, _) = emit_one(&spec, 20_000);
        let ratio = t.data_len() as f64 / t.instr_len() as f64;
        assert!(
            (ratio / spec.data_ratio - 1.0).abs() < 0.02,
            "ratio {ratio}"
        );
    }

    #[test]
    fn shared_fraction_is_respected() {
        let spec = suite::mp3d(); // 82.6% shared
        let (t, _) = emit_one(&spec, 50_000);
        let shared = t
            .iter()
            .filter(|r| r.kind.is_data() && is_shared(r.addr.raw()))
            .count() as f64;
        let frac = 100.0 * shared / t.data_len() as f64;
        assert!((frac - spec.shared_percent).abs() < 2.0, "frac {frac}");
    }

    #[test]
    fn shared_accesses_come_in_runs() {
        let spec = suite::topopt(); // 611 refs per shared address
        let (t, _) = emit_one(&spec, 30_000);
        let addrs: Vec<u64> = t
            .iter()
            .filter(|r| r.kind.is_data() && is_shared(r.addr.raw()))
            .map(|r| r.addr.raw())
            .collect();
        let mut runs = 1u64;
        for w in addrs.windows(2) {
            if w[0] != w[1] {
                runs += 1;
            }
        }
        let mean_run = addrs.len() as f64 / runs as f64;
        assert!(mean_run > 50.0, "mean shared run {mean_run}");
    }

    #[test]
    fn writes_present_per_policy() {
        let spec = suite::mp3d();
        let (t, _) = emit_one(&spec, 20_000);
        let writes = t.iter().filter(|r| r.kind == RefKind::Write).count();
        assert!(writes > 0);
    }

    #[test]
    fn own_range_policy_confines_shared_writes() {
        let spec = suite::barnes_hut();
        let plan = SharedPlan {
            slots: (0..200).collect(),
            policy: WritePolicy::OwnRange {
                lo: 0,
                hi: 10,
                prob: 0.9,
            },
            target_refs: 0,
        };
        let layout = Layout::new(vec![private_slot_count(&spec, 30_000)]);
        let t = emit_thread(&spec, 0, 30_000, &plan, &layout, &small_opts());
        for r in t.iter() {
            if r.kind == RefKind::Write && is_shared(r.addr.raw()) {
                let slot = (r.addr.raw() - regions::SHARED_BASE) / regions::SHARED_STRIDE;
                assert!(slot < 10, "shared write outside own range: slot {slot}");
            }
        }
    }

    #[test]
    fn private_addresses_stay_in_own_region() {
        let spec = suite::water();
        let plan = SharedPlan {
            slots: vec![0],
            policy: WritePolicy::Bernoulli(0.2),
            target_refs: 0,
        };
        let counts = vec![
            private_slot_count(&spec, 5_000),
            private_slot_count(&spec, 5_000),
            private_slot_count(&spec, 5_000),
            private_slot_count(&spec, 5_000),
        ];
        let layout = Layout::new(counts);
        let t3 = emit_thread(&spec, 3, 5_000, &plan, &layout, &small_opts());
        for r in t3.iter() {
            let a = r.addr.raw();
            if a >= regions::PRIVATE_BASE {
                assert!(
                    a >= layout.private_base(3) && a < layout.end(),
                    "address {a:#x} outside thread 3's region"
                );
            }
        }
    }

    #[test]
    fn private_slot_count_formula() {
        let spec = suite::water(); // 71.7% shared, ratio 0.30
        let n = private_slot_count(&spec, 100_000);
        let expect = (100_000.0_f64 * 0.30 * (1.0 - 0.717) / 30.0).ceil() as u64;
        assert_eq!(n, expect);
        assert!(private_slot_count(&spec, 0) >= 1);
    }
}
