//! `placesim-cli`: command-line trace tooling for the reproduction.
//!
//! ```text
//! placesim-cli suite
//! placesim-cli gen <app> <out.trace> [--scale S] [--seed N]
//! placesim-cli info <trace>
//! placesim-cli analyze <trace>
//! placesim-cli place <trace> <algorithm> <processors>
//! placesim-cli simulate <trace> <algorithm> <processors> [--cache-kb K]
//!              [--assoc W] [--latency L] [--switch C]
//! placesim-cli probe <trace>
//! ```
//!
//! Traces use the `placesim-trace` binary format, so generated traces
//! can be archived and re-analyzed like MPtrace outputs were.

use placesim_analysis::{CharacteristicsRow, SharingAnalysis};
use placesim_machine::{probe_coherence, simulate, ArchConfig};
use placesim_placement::{thread_lengths, PlacementAlgorithm, PlacementInputs};
use placesim_trace::{compress, io as trace_io, ProgramTrace};
use placesim_workloads::{generate, suite, GenOptions};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  placesim-cli suite
  placesim-cli gen <app> <out.trace> [--scale S] [--seed N] [--flat]
  placesim-cli info <trace>
  placesim-cli analyze <trace>
  placesim-cli place <trace> <algorithm> <processors>
  placesim-cli simulate <trace> <algorithm> <processors>
               [--cache-kb K] [--assoc W] [--latency L] [--switch C]
  placesim-cli probe <trace>";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("suite") => cmd_suite(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("place") => cmd_place(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        Some(other) => Err(format!("unknown command {other}")),
        None => Err("missing command".into()),
    }
}

/// Parses `--key value` flags from the tail of an argument list.
fn flag(args: &[String], name: &str) -> Result<Option<f64>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args
                .get(i + 1)
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("{name} value must be numeric"));
        }
    }
    Ok(None)
}

fn parse_algorithm(name: &str) -> Result<PlacementAlgorithm, String> {
    PlacementAlgorithm::ALL
        .into_iter()
        .find(|a| a.paper_name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<&str> = PlacementAlgorithm::ALL
                .iter()
                .map(|a| a.paper_name())
                .collect();
            format!(
                "unknown algorithm {name}; choose one of {}",
                names.join(", ")
            )
        })
}

fn load_trace(path: &str) -> Result<ProgramTrace, String> {
    let mut file =
        BufReader::new(File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?);
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut file, &mut raw)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    // Accepts both the flat v1 and compressed v2 formats.
    compress::read_any(&raw).map_err(|e| format!("cannot decode {path}: {e}"))
}

fn cmd_suite() -> Result<(), String> {
    println!(
        "{:<14} {:<8} {:>8} {:>16} {:>14}",
        "app", "grain", "threads", "mean length", "shared refs %"
    );
    for s in suite() {
        println!(
            "{:<14} {:<8} {:>8} {:>16} {:>13.1}%",
            s.name,
            format!("{:?}", s.granularity),
            s.threads,
            s.thread_length.mean as u64,
            s.shared_percent
        );
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let app = args.first().ok_or("gen needs an app name")?;
    let out = args.get(1).ok_or("gen needs an output path")?;
    let spec = placesim_workloads::spec(app).ok_or_else(|| format!("unknown app {app}"))?;
    let opts = GenOptions {
        // --scale wins; otherwise PLACESIM_SCALE, like the bench harness.
        scale: flag(args, "--scale")?.unwrap_or_else(|| placesim::scale_from_env(0.1)),
        seed: flag(args, "--seed")?.unwrap_or(1994.0) as u64,
    };
    let prog = generate(&spec, &opts);
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let flat = args.iter().any(|a| a == "--flat");
    if flat {
        trace_io::write_program(&prog, BufWriter::new(file))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
    } else {
        compress::write_program(&prog, BufWriter::new(file))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    println!(
        "wrote {out}: {} threads, {} references (scale {}, seed {}, {} format)",
        prog.thread_count(),
        prog.total_refs(),
        opts.scale,
        opts.seed,
        if flat { "flat v1" } else { "compressed v2" }
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let prog = load_trace(args.first().ok_or("info needs a trace path")?)?;
    println!("program:      {}", prog.name());
    println!("threads:      {}", prog.thread_count());
    println!("references:   {}", prog.total_refs());
    println!("instructions: {}", prog.total_instrs());
    println!("data refs:    {}", prog.total_data_refs());
    for (id, t) in prog.iter() {
        println!(
            "  {id}: {} instrs, {} reads, {} writes",
            t.instr_len(),
            t.read_len(),
            t.write_len()
        );
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let prog = load_trace(args.first().ok_or("analyze needs a trace path")?)?;
    let sharing = SharingAnalysis::measure(&prog);
    let row = CharacteristicsRow::from_sharing(&prog, &sharing, 1994);
    println!("app: {}", row.app);
    println!(
        "pairwise sharing:      mean {:.0}  dev {:.1}%",
        row.pairwise_sharing.mean,
        row.pairwise_sharing.dev_percent()
    );
    println!(
        "n-way sharing:         mean {:.0}  dev {:.1}%",
        row.nway_sharing.mean,
        row.nway_sharing.dev_percent()
    );
    println!(
        "refs per shared addr:  mean {:.1}  dev {:.1}%",
        row.refs_per_shared_addr.mean,
        row.refs_per_shared_addr.dev_percent()
    );
    println!(
        "shared refs:           {:.1}%",
        row.shared_refs_percent.mean
    );
    println!(
        "thread length:         mean {:.0}  dev {:.1}%",
        row.thread_length.mean,
        row.thread_length.dev_percent()
    );
    println!(
        "shared addresses:      {} of {}",
        sharing.shared_address_count(),
        sharing.total_address_count()
    );
    Ok(())
}

fn cmd_place(args: &[String]) -> Result<(), String> {
    let prog = load_trace(args.first().ok_or("place needs a trace path")?)?;
    let algo = parse_algorithm(args.get(1).ok_or("place needs an algorithm")?)?;
    let processors: usize = args
        .get(2)
        .ok_or("place needs a processor count")?
        .parse()
        .map_err(|_| "processor count must be an integer".to_string())?;
    let sharing = SharingAnalysis::measure(&prog);
    let lengths = thread_lengths(&prog);
    let inputs = PlacementInputs::new(&sharing, &lengths);
    let map = algo.place(&inputs, processors).map_err(|e| e.to_string())?;
    println!("{} onto {processors} processors:", algo.paper_name());
    print!("{map}");
    println!("loads: {:?}", map.loads(&lengths));
    println!("load imbalance: {:.3}", map.load_imbalance(&lengths));
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let prog = load_trace(args.first().ok_or("simulate needs a trace path")?)?;
    let algo = parse_algorithm(args.get(1).ok_or("simulate needs an algorithm")?)?;
    let processors: usize = args
        .get(2)
        .ok_or("simulate needs a processor count")?
        .parse()
        .map_err(|_| "processor count must be an integer".to_string())?;

    let mut builder = ArchConfig::builder();
    if let Some(kb) = flag(args, "--cache-kb")? {
        builder.cache_size(kb as u64 * 1024);
    }
    if let Some(w) = flag(args, "--assoc")? {
        builder.associativity(w as u32);
    }
    if let Some(l) = flag(args, "--latency")? {
        builder.memory_latency(l as u64);
    }
    if let Some(c) = flag(args, "--switch")? {
        builder.context_switch(c as u64);
    }
    let config = builder.build().map_err(|e| e.to_string())?;

    let sharing = SharingAnalysis::measure(&prog);
    let lengths = thread_lengths(&prog);
    let inputs = PlacementInputs::new(&sharing, &lengths);
    let map = algo.place(&inputs, processors).map_err(|e| e.to_string())?;
    let stats = simulate(&prog, &map, &config).map_err(|e| e.to_string())?;

    let m = stats.total_misses();
    println!("execution time: {} cycles", stats.execution_time());
    println!("references:     {}", stats.total_refs());
    println!("miss rate:      {:.3}%", 100.0 * stats.miss_rate());
    println!("misses:");
    println!("  compulsory            {}", m.compulsory);
    println!("  intra-thread conflict {}", m.intra_thread_conflict);
    println!("  inter-thread conflict {}", m.inter_thread_conflict);
    println!("  invalidation          {}", m.invalidation);
    println!("coherence traffic: {}", stats.coherence_traffic());
    Ok(())
}

fn cmd_probe(args: &[String]) -> Result<(), String> {
    let prog = load_trace(args.first().ok_or("probe needs a trace path")?)?;
    let result = probe_coherence(&prog, &ArchConfig::paper_default()).map_err(|e| e.to_string())?;
    println!("one-thread-per-processor coherence probe:");
    println!("  compulsory misses: {}", result.compulsory_misses());
    println!("  coherence traffic: {}", result.total_traffic());
    println!(
        "  traffic fraction:  {:.4}% of references",
        100.0 * result.traffic_fraction()
    );
    // Top-5 hottest thread pairs.
    let mut pairs: Vec<(usize, usize, u64)> = result.traffic.iter_pairs().collect();
    pairs.sort_by_key(|&(_, _, v)| std::cmp::Reverse(v));
    println!("  hottest thread pairs:");
    for (a, b, v) in pairs.into_iter().take(5) {
        println!("    T{a} <-> T{b}: {v}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = s(&["gen", "fft", "--scale", "0.25", "--seed", "7"]);
        assert_eq!(flag(&args, "--scale").unwrap(), Some(0.25));
        assert_eq!(flag(&args, "--seed").unwrap(), Some(7.0));
        assert_eq!(flag(&args, "--missing").unwrap(), None);
        assert!(flag(&s(&["--scale"]), "--scale").is_err());
        assert!(flag(&s(&["--scale", "abc"]), "--scale").is_err());
    }

    #[test]
    fn algorithm_parsing() {
        assert_eq!(
            parse_algorithm("share-refs").unwrap(),
            PlacementAlgorithm::ShareRefs
        );
        assert_eq!(
            parse_algorithm("LOAD-BAL").unwrap(),
            PlacementAlgorithm::LoadBal
        );
        assert!(parse_algorithm("bogus").is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn suite_command_runs() {
        run(&s(&["suite"])).unwrap();
    }

    #[test]
    fn gen_info_analyze_roundtrip() {
        let dir = std::env::temp_dir().join("placesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fft.trace");
        let path_s = path.to_str().unwrap().to_string();

        run(&s(&[
            "gen", "fft", &path_s, "--scale", "0.002", "--seed", "3",
        ]))
        .unwrap();
        run(&s(&["info", &path_s])).unwrap(); // compressed v2 loads
        run(&s(&[
            "gen", "fft", &path_s, "--scale", "0.002", "--seed", "3", "--flat",
        ]))
        .unwrap();
        run(&s(&["info", &path_s])).unwrap();
        run(&s(&["analyze", &path_s])).unwrap();
        run(&s(&["place", &path_s, "LOAD-BAL", "4"])).unwrap();
        run(&s(&[
            "simulate",
            &path_s,
            "RANDOM",
            "4",
            "--cache-kb",
            "32",
            "--assoc",
            "2",
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run(&s(&["info", "/nonexistent/x.trace"])).unwrap_err();
        assert!(err.contains("cannot open"));
    }

    /// Archived-trace round-trip through the new sharded front-end: the
    /// analysis of a loaded trace matches the in-memory original (both
    /// via the fused path and the reference path), and placements on the
    /// archive agree between cached and fresh engine scoring — i.e. the
    /// `analyze`/`place` subcommands see exactly what `gen` measured.
    #[test]
    fn archived_trace_analysis_matches_original() {
        use placesim_placement::ScoreMode;

        let dir = std::env::temp_dir().join("placesim-cli-archive-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("water.trace");
        let path_s = path.to_str().unwrap().to_string();

        let spec = placesim_workloads::spec("water").unwrap();
        let opts = GenOptions {
            scale: 0.002,
            seed: 11,
        };
        let prog = generate(&spec, &opts);
        let file = File::create(&path).unwrap();
        compress::write_program(&prog, BufWriter::new(file)).unwrap();

        let loaded = load_trace(&path_s).unwrap();
        let archived = SharingAnalysis::measure(&loaded);
        assert_eq!(archived, SharingAnalysis::measure(&prog));
        assert_eq!(archived, SharingAnalysis::measure_reference(&loaded));

        let lengths = thread_lengths(&loaded);
        let inputs = PlacementInputs::new(&archived, &lengths);
        for algo in [
            PlacementAlgorithm::ShareRefs,
            PlacementAlgorithm::ShareAddrLb,
            PlacementAlgorithm::MinPriv,
        ] {
            assert_eq!(
                algo.place_with_mode(&inputs, 4, ScoreMode::Cached).unwrap(),
                algo.place_with_mode(&inputs, 4, ScoreMode::Fresh).unwrap(),
                "{algo} diverged on the archived trace"
            );
        }

        // The user-facing subcommands run end-to-end on the archive.
        run(&s(&["analyze", &path_s])).unwrap();
        run(&s(&["place", &path_s, "SHARE-REFS", "4"])).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
