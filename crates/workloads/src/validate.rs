//! Validation of generated traces against their spec targets.
//!
//! Used by tests and by the Table 1/2 harness to confirm each synthetic
//! application actually exhibits the characteristics it was tuned for.

use crate::spec::AppSpec;
use placesim_trace::stats::MeanDev;
use placesim_trace::ProgramTrace;
use serde::{Deserialize, Serialize};

/// How one measured quantity compares against its target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Check {
    /// Target value from the spec.
    pub target: f64,
    /// Measured value from the generated trace.
    pub measured: f64,
    /// Allowed relative error (fraction, e.g. 0.15).
    pub tolerance: f64,
}

impl Check {
    /// Whether the measurement is within tolerance of the target.
    ///
    /// Uses relative error, falling back to absolute for near-zero
    /// targets.
    pub fn passes(&self) -> bool {
        if self.target.abs() < 1e-9 {
            self.measured.abs() <= self.tolerance
        } else {
            ((self.measured - self.target) / self.target).abs() <= self.tolerance
        }
    }
}

/// Validation report for one generated application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Application name.
    pub app: String,
    /// Thread count matches the spec exactly.
    pub thread_count_ok: bool,
    /// Mean thread length vs. spec (tolerance 20%).
    pub thread_length_mean: Check,
    /// Percentage of shared data references vs. spec (tolerance 10%).
    pub shared_percent: Check,
    /// Data references per instruction vs. spec (tolerance 10%).
    pub data_ratio: Check,
}

impl ValidationReport {
    /// Measures `prog` against `spec`.
    pub fn measure(spec: &AppSpec, prog: &ProgramTrace, scale: f64) -> Self {
        let lengths = MeanDev::from_values(prog.threads().iter().map(|t| t.instr_len() as f64));

        let mut shared_refs = 0u64;
        let mut data_refs = 0u64;
        for thread in prog.threads() {
            for r in thread.iter() {
                if r.kind.is_data() {
                    data_refs += 1;
                    let a = r.addr.raw();
                    if (crate::gen_internals::SHARED_BASE..crate::gen_internals::PRIVATE_BASE)
                        .contains(&a)
                    {
                        shared_refs += 1;
                    }
                }
            }
        }
        let shared_pct = if data_refs == 0 {
            0.0
        } else {
            100.0 * shared_refs as f64 / data_refs as f64
        };
        let measured_ratio = if prog.total_instrs() == 0 {
            0.0
        } else {
            data_refs as f64 / prog.total_instrs() as f64
        };

        ValidationReport {
            app: spec.name.to_owned(),
            thread_count_ok: prog.thread_count() == spec.threads,
            thread_length_mean: Check {
                target: spec.thread_length.mean * scale,
                measured: lengths.mean,
                // The sample mean of t lognormal draws with coefficient
                // of variation cv itself has cv/√t relative noise; allow
                // three of those on top of the base tolerance.
                tolerance: 0.20
                    + 3.0 * (spec.thread_length.dev_percent / 100.0) / (spec.threads as f64).sqrt(),
            },
            shared_percent: Check {
                target: spec.shared_percent,
                measured: shared_pct,
                tolerance: 0.10,
            },
            data_ratio: Check {
                target: spec.data_ratio,
                measured: measured_ratio,
                tolerance: 0.10,
            },
        }
    }

    /// `true` if every check passes.
    pub fn all_ok(&self) -> bool {
        self.thread_count_ok
            && self.thread_length_mean.passes()
            && self.shared_percent.passes()
            && self.data_ratio.passes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenOptions};
    use crate::suite;

    #[test]
    fn check_relative_and_absolute() {
        assert!(Check {
            target: 100.0,
            measured: 108.0,
            tolerance: 0.10
        }
        .passes());
        assert!(!Check {
            target: 100.0,
            measured: 120.0,
            tolerance: 0.10
        }
        .passes());
        assert!(Check {
            target: 0.0,
            measured: 0.05,
            tolerance: 0.10
        }
        .passes());
    }

    #[test]
    fn every_app_validates_at_small_scale() {
        let opts = GenOptions {
            scale: 0.02,
            seed: 314,
        };
        for spec in suite::suite() {
            let prog = generate(&spec, &opts);
            let report = ValidationReport::measure(&spec, &prog, opts.scale);
            assert!(
                report.all_ok(),
                "{} failed validation: {report:#?}",
                spec.name
            );
        }
    }
}
