//! Small parallel-map helper for experiment sweeps.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on a pool of worker threads and returns the
/// results in input order.
///
/// The worker count is `min(items, available_parallelism)`. `f` must be
/// `Sync` (it runs concurrently) and results are collected through a
/// mutex-guarded slot vector, so per-item overhead is tiny compared to a
/// simulation run.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock() = Some(r);
            });
        }
    })
    .expect("worker thread panicked");

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_state_is_shared_immutably() {
        let table: Vec<u64> = (0..1000).collect();
        let items: Vec<usize> = (0..50).collect();
        let out = parallel_map(&items, |&i| table[i * 2]);
        assert_eq!(out[10], 20);
    }
}
