//! Criterion comparison of the batched hit-run engine against the
//! per-reference reference engine, in references per second.
//!
//! `hot-loop` is the fast path's best case (one processor, four
//! cache-resident contexts, no competing events); `water-p4` is the
//! paper's configuration, where lockstep cross-processor events cut hit
//! runs at the horizon and gains come from the flat cache slab and the
//! fused access. `BENCH_engine.json` (see the `bench_engine` binary)
//! records the same comparison as committed numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use placesim::PreparedApp;
use placesim_machine::{reference, simulate, ArchConfig};
use placesim_placement::{PlacementAlgorithm, PlacementMap};
use placesim_trace::{Address, MemRef, ProgramTrace, ThreadTrace};
use placesim_workloads::{spec, GenOptions};

fn hot_loop_program() -> (ProgramTrace, PlacementMap) {
    let threads: Vec<ThreadTrace> = (0..4u64)
        .map(|t| {
            (0..50_000u64)
                .map(|i| MemRef::read(Address::new(t * 0x1000 + (i % 4) * 64)))
                .collect()
        })
        .collect();
    let prog = ProgramTrace::new("hot-loop", threads);
    let map = PlacementMap::from_clusters(vec![vec![0, 1, 2, 3]]).unwrap();
    (prog, map)
}

fn bench_engines(c: &mut Criterion) {
    let opts = GenOptions {
        scale: 0.02,
        seed: 1994,
    };
    let app = PreparedApp::prepare(&spec("water").unwrap(), &opts);
    let water_map = PlacementAlgorithm::LoadBal
        .place(&app.placement_inputs(), 4)
        .expect("placement");
    let (hot_prog, hot_map) = hot_loop_program();

    let cases: [(&str, &ProgramTrace, &PlacementMap, ArchConfig); 2] = [
        (
            "hot-loop-p1",
            &hot_prog,
            &hot_map,
            ArchConfig::paper_default(),
        ),
        ("water-p4", &app.prog, &water_map, app.config),
    ];

    let mut group = c.benchmark_group("engine-throughput");
    for (name, prog, map, config) in &cases {
        group.throughput(Throughput::Elements(prog.total_refs()));
        group.bench_with_input(BenchmarkId::new("batched", name), prog, |b, prog| {
            b.iter(|| simulate(prog, map, config).expect("simulate"));
        });
        group.bench_with_input(BenchmarkId::new("reference", name), prog, |b, prog| {
            b.iter(|| reference::simulate(prog, map, config).expect("simulate"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_engines
}
criterion_main!(benches);
